#include "integrate/scenario_harness.h"

#include "eval/random_ap.h"
#include "eval/tied_ap.h"

namespace biorank {

ScenarioHarness::ScenarioHarness(HarnessOptions options)
    : options_(options),
      universe_(ProteinUniverse::Generate(options.universe)),
      registry_(universe_, options.sources),
      mediator_(registry_, options.mediator),
      ranker_(options.ranker) {}

Result<std::vector<ScenarioQuery>> ScenarioHarness::BuildQueries(
    ScenarioId scenario) const {
  std::vector<ScenarioQuery> queries;
  for (const ScenarioCase& spec : BuildScenarioCases(universe_, scenario)) {
    Result<ExploratoryQueryResult> run =
        mediator_.Run(MakeProteinFunctionQuery(spec.gene_symbol));
    if (!run.ok()) return run.status();
    ScenarioQuery query;
    query.spec = spec;
    query.answer_count =
        static_cast<int>(run.value().query_graph.answers.size());
    query.gold_total = static_cast<int>(spec.gold_functions.size());
    for (int go : spec.gold_functions) {
      auto it = run.value().go_node.find(go);
      if (it != run.value().go_node.end()) {
        query.relevant.insert(it->second);
        ++query.gold_retrieved;
      }
    }
    query.graph = std::move(run.value().query_graph);
    queries.push_back(std::move(query));
  }
  return queries;
}

Result<double> ScenarioHarness::ApForQuery(const ScenarioQuery& query,
                                           RankingMethod method) const {
  return ApForGraph(query.graph, query.relevant, method);
}

Result<double> ScenarioHarness::ApForGraph(
    const QueryGraph& graph, const std::unordered_set<NodeId>& relevant,
    RankingMethod method) const {
  Result<std::vector<RankedAnswer>> ranking = ranker_.Rank(graph, method);
  if (!ranking.ok()) return ranking.status();
  return ApForRanking(ranking.value(), relevant);
}

Result<double> ScenarioHarness::RandomBaselineAp(
    const ScenarioQuery& query) const {
  return RandomAveragePrecision(
      static_cast<int>(query.relevant.size()), query.answer_count);
}

}  // namespace biorank
