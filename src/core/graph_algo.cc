#include "core/graph_algo.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace biorank {

std::vector<bool> ReachableFrom(const ProbabilisticEntityGraph& graph,
                                NodeId start) {
  std::vector<bool> visited(graph.node_capacity(), false);
  if (!graph.IsValidNode(start)) return visited;
  std::vector<NodeId> stack = {start};
  visited[start] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).to;
      if (!visited[y]) {
        visited[y] = true;
        stack.push_back(y);
      }
    });
  }
  return visited;
}

std::vector<bool> CoReachable(const ProbabilisticEntityGraph& graph,
                              NodeId target) {
  std::vector<bool> visited(graph.node_capacity(), false);
  if (!graph.IsValidNode(target)) return visited;
  std::vector<NodeId> stack = {target};
  visited[target] = true;
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    graph.ForEachInEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).from;
      if (!visited[y]) {
        visited[y] = true;
        stack.push_back(y);
      }
    });
  }
  return visited;
}

Result<std::vector<NodeId>> TopologicalOrder(
    const ProbabilisticEntityGraph& graph) {
  // Kahn's algorithm over alive nodes.
  int capacity = graph.node_capacity();
  std::vector<int> in_degree(capacity, 0);
  std::vector<NodeId> queue;
  for (NodeId i = 0; i < capacity; ++i) {
    if (!graph.IsValidNode(i)) continue;
    in_degree[i] = graph.InDegree(i);
    if (in_degree[i] == 0) queue.push_back(i);
  }
  std::vector<NodeId> order;
  order.reserve(graph.num_nodes());
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId x = queue[head];
    order.push_back(x);
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).to;
      if (--in_degree[y] == 0) queue.push_back(y);
    });
  }
  if (static_cast<int>(order.size()) != graph.num_nodes()) {
    return Status::FailedPrecondition("graph has a cycle");
  }
  return order;
}

bool HasCycleReachableFrom(const ProbabilisticEntityGraph& graph,
                           NodeId start) {
  if (!graph.IsValidNode(start)) return false;
  // Iterative three-color DFS restricted to nodes reachable from start.
  enum Color : uint8_t { kWhite, kGray, kBlack };
  std::vector<uint8_t> color(graph.node_capacity(), kWhite);
  // Stack frames: (node, next-edge-cursor over OutEdges snapshot).
  struct Frame {
    NodeId node;
    std::vector<EdgeId> edges;
    size_t cursor = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{start, graph.OutEdges(start)});
  color[start] = kGray;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.cursor >= frame.edges.size()) {
      color[frame.node] = kBlack;
      stack.pop_back();
      continue;
    }
    NodeId y = graph.edge(frame.edges[frame.cursor++]).to;
    if (color[y] == kGray) return true;
    if (color[y] == kWhite) {
      color[y] = kGray;
      stack.push_back(Frame{y, graph.OutEdges(y)});
    }
  }
  return false;
}

Result<int> LongestPathLengthFrom(const ProbabilisticEntityGraph& graph,
                                  NodeId source) {
  if (HasCycleReachableFrom(graph, source)) {
    return Status::FailedPrecondition(
        "longest path undefined: cycle reachable from source");
  }
  std::vector<bool> reachable = ReachableFrom(graph, source);
  Result<std::vector<NodeId>> order = TopologicalOrder(graph);
  std::vector<NodeId> topo;
  if (order.ok()) {
    topo = order.value();
  } else {
    // A cycle exists somewhere unreachable from the source; order the
    // reachable sub-DAG only.
    std::vector<NodeId> old_to_new;
    ProbabilisticEntityGraph sub =
        InducedSubgraph(graph, reachable, &old_to_new);
    Result<std::vector<NodeId>> sub_order = TopologicalOrder(sub);
    if (!sub_order.ok()) return sub_order.status();
    // Map dense ids back to the original ids.
    std::vector<NodeId> new_to_old(sub.node_capacity(), kInvalidNode);
    for (NodeId i = 0; i < graph.node_capacity(); ++i) {
      if (old_to_new.size() > static_cast<size_t>(i) &&
          old_to_new[i] != kInvalidNode) {
        new_to_old[old_to_new[i]] = i;
      }
    }
    for (NodeId dense : sub_order.value()) topo.push_back(new_to_old[dense]);
  }
  std::vector<int> depth(graph.node_capacity(), -1);
  depth[source] = 0;
  int longest = 0;
  for (NodeId x : topo) {
    if (x == kInvalidNode || !reachable[x] || depth[x] < 0) continue;
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).to;
      if (depth[x] + 1 > depth[y]) {
        depth[y] = depth[x] + 1;
        longest = std::max(longest, depth[y]);
      }
    });
  }
  return longest;
}

ProbabilisticEntityGraph InducedSubgraph(const ProbabilisticEntityGraph& graph,
                                         const std::vector<bool>& keep,
                                         std::vector<NodeId>* old_to_new) {
  ProbabilisticEntityGraph sub;
  std::vector<NodeId> mapping(graph.node_capacity(), kInvalidNode);
  for (NodeId i = 0; i < graph.node_capacity(); ++i) {
    if (!graph.IsValidNode(i)) continue;
    if (static_cast<size_t>(i) < keep.size() && keep[i]) {
      const GraphNode& node = graph.node(i);
      mapping[i] = sub.AddNode(node.p, node.label, node.entity_set);
    }
  }
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    NodeId from = mapping[edge.from];
    NodeId to = mapping[edge.to];
    if (from != kInvalidNode && to != kInvalidNode) {
      sub.AddEdge(from, to, edge.q).value();
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return sub;
}

namespace {

/// Shared tail of the restriction overloads: record the mask, build the
/// induced subgraph, and remap source + answers to the dense ids.
QueryGraph FinishRestriction(const QueryGraph& query_graph,
                             const std::vector<NodeId>& answers,
                             const std::vector<bool>& keep,
                             std::vector<bool>* kept_nodes) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  if (kept_nodes != nullptr) *kept_nodes = keep;
  std::vector<NodeId> old_to_new;
  QueryGraph result;
  result.graph = InducedSubgraph(graph, keep, &old_to_new);
  result.source = old_to_new[query_graph.source];
  for (NodeId t : answers) {
    if (graph.IsValidNode(t)) result.answers.push_back(old_to_new[t]);
  }
  return result;
}

}  // namespace

QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph) {
  return RestrictToQueryRelevantSubgraph(query_graph, query_graph.answers);
}

QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph,
                                           const std::vector<NodeId>& answers,
                                           const CsrSnapshot& graph_csr,
                                           std::vector<bool>* kept_nodes) {
  std::vector<bool> keep =
      QueryRelevantMask(graph_csr, query_graph.source, answers);
  return FinishRestriction(query_graph, answers, keep, kept_nodes);
}

QueryGraph RestrictToQueryRelevantSubgraph(const QueryGraph& query_graph,
                                           const std::vector<NodeId>& answers,
                                           std::vector<bool>* kept_nodes) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  std::vector<bool> reach = ReachableFrom(graph, query_graph.source);
  std::vector<bool> keep(graph.node_capacity(), false);
  keep[query_graph.source] = true;
  // Union over answers of CoReach(t), intersected with Reach(source).
  std::vector<bool> wanted(graph.node_capacity(), false);
  for (NodeId t : answers) {
    if (!graph.IsValidNode(t)) continue;
    wanted[t] = true;
  }
  // One backward BFS from all answers at once.
  std::vector<NodeId> stack;
  std::vector<bool> co(graph.node_capacity(), false);
  for (NodeId t : answers) {
    if (graph.IsValidNode(t) && !co[t]) {
      co[t] = true;
      stack.push_back(t);
    }
  }
  while (!stack.empty()) {
    NodeId x = stack.back();
    stack.pop_back();
    graph.ForEachInEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).from;
      if (!co[y]) {
        co[y] = true;
        stack.push_back(y);
      }
    });
  }
  for (NodeId i = 0; i < graph.node_capacity(); ++i) {
    if (!graph.IsValidNode(i)) continue;
    if ((reach[i] && co[i]) || wanted[i]) keep[i] = true;
  }
  return FinishRestriction(query_graph, answers, keep, kept_nodes);
}

std::string ToDot(const QueryGraph& query_graph) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  std::vector<bool> is_answer(graph.node_capacity(), false);
  for (NodeId t : query_graph.answers) {
    if (t >= 0 && t < graph.node_capacity()) is_answer[t] = true;
  }
  std::ostringstream os;
  os << "digraph biorank {\n  rankdir=LR;\n";
  for (NodeId i : graph.AliveNodes()) {
    const GraphNode& node = graph.node(i);
    std::string label = node.label.empty() ? std::to_string(i) : node.label;
    os << "  n" << i << " [label=\"" << label << "\\np="
       << FormatCompact(node.p, 3) << "\"";
    if (i == query_graph.source) {
      os << ", shape=box, style=filled, fillcolor=lightblue";
    } else if (is_answer[i]) {
      os << ", shape=doublecircle, style=filled, fillcolor=mistyrose";
    }
    os << "];\n";
  }
  for (EdgeId e : graph.AliveEdges()) {
    const GraphEdge& edge = graph.edge(e);
    os << "  n" << edge.from << " -> n" << edge.to << " [label=\""
       << FormatCompact(edge.q, 3) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace biorank
