#include "shard/router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/query.h"
#include "api/server.h"
#include "core/query_graph.h"
#include "shard/partitioner.h"
#include "shard/transport.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank::shard {
namespace {

using biorank::testing::MakeRandomLayeredDag;
using biorank::testing::RandomDagOptions;

/// One shared three-shard fleet (construction generates three synthetic
/// universes); shard 0's server doubles as the router's front door and
/// as the monolith reference every bit-identity test compares against.
InProcessTransport& SharedTransport() {
  static InProcessTransport* transport = new InProcessTransport(3);
  return *transport;
}

ShardRouter& SharedRouter() {
  static ShardRouter* router = [] {
    ShardRouterOptions options;
    options.partition.num_shards = SharedTransport().shard_count();
    return new ShardRouter(SharedTransport().server(0), SharedTransport(),
                           options);
  }();
  return *router;
}

api::Server& Monolith() { return SharedTransport().server(0); }

std::string WellStudiedSymbol(int index) {
  const ProteinUniverse& universe = Monolith().universe();
  return universe.protein(universe.well_studied()[static_cast<size_t>(index)])
      .gene_symbol;
}

QueryGraph MakeDag(uint64_t seed, int answers) {
  Rng rng(seed);
  RandomDagOptions options;
  options.answers = answers;
  return MakeRandomLayeredDag(rng, options);
}

/// Probe labels until every shard owns `per_shard` of them — the tie /
/// fault / short-circuit tests need answers pinned to known shards.
std::vector<std::vector<std::string>> LabelsByShard(const Partitioner& p,
                                                    size_t per_shard) {
  std::vector<std::vector<std::string>> buckets(p.num_shards());
  size_t filled = 0;
  for (int i = 0; filled < buckets.size(); ++i) {
    std::vector<std::string>& bucket = buckets[p.ShardOf(
        "probe" + std::to_string(i))];
    if (bucket.size() < per_shard) {
      bucket.push_back("probe" + std::to_string(i));
      if (bucket.size() == per_shard) ++filled;
    }
  }
  return buckets;
}

TEST(ShardRouterTest, RankGraphIsBitIdenticalToTheMonolith) {
  ShardRouter& router = SharedRouter();
  const uint64_t calls_before = SharedRouter().Stats().shard_calls;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    QueryGraph graph = MakeDag(seed, 9);
    for (int k : {3, 0}) {
      api::Result<api::QueryResponse> sharded = router.RankGraph(graph, k);
      api::Result<api::QueryResponse> mono = Monolith().RankGraph(graph, k);
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      ASSERT_TRUE(mono.ok()) << mono.status();
      EXPECT_EQ(api::RankingFingerprint(sharded.value()),
                api::RankingFingerprint(mono.value()))
          << "seed " << seed << " k " << k;
      // Labels ride along exactly like the monolith's.
      ASSERT_EQ(sharded.value().top.size(), mono.value().top.size());
      for (size_t i = 0; i < sharded.value().top.size(); ++i) {
        EXPECT_EQ(sharded.value().top[i].label, mono.value().top[i].label);
      }
    }
  }
  EXPECT_GT(router.Stats().shard_calls, calls_before);
}

TEST(ShardRouterTest, QueryIsBitIdenticalToTheMonolithEndToEnd) {
  ShardRouter& router = SharedRouter();
  for (int protein = 0; protein < 2; ++protein) {
    api::QueryRequest request =
        api::MakeProteinFunctionRequest(WellStudiedSymbol(protein), 5);
    api::Result<api::QueryResponse> sharded = router.Query(request);
    api::Result<api::QueryResponse> mono = Monolith().Query(request);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ASSERT_TRUE(mono.ok()) << mono.status();
    EXPECT_EQ(api::RankingFingerprint(sharded.value()),
              api::RankingFingerprint(mono.value()));
    EXPECT_GT(sharded.value().result.query_graph.graph.num_nodes(), 0);
    EXPECT_GE(sharded.value().timing.total_s, sharded.value().timing.rank_s);
  }
}

TEST(ShardRouterTest, KLargerThanTheUnionRanksEveryAnswer) {
  QueryGraph graph = MakeDag(21, 5);
  api::Result<api::QueryResponse> sharded = SharedRouter().RankGraph(graph, 100);
  api::Result<api::QueryResponse> mono = Monolith().RankGraph(graph, 100);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(mono.ok()) << mono.status();
  EXPECT_EQ(sharded.value().top.size(), graph.answers.size());
  EXPECT_EQ(api::RankingFingerprint(sharded.value()),
            api::RankingFingerprint(mono.value()));
}

TEST(ShardRouterTest, EmptySlicesAreSkippedNotCalled) {
  // One answer over three shards: at least two shards own nothing and
  // must be skipped (counted, never called).
  QueryGraphBuilder builder;
  NodeId answer = builder.Node(1.0, "lonely-answer");
  builder.Edge(builder.Source(), answer, 0.5);
  QueryGraph graph = std::move(builder).Build({answer});

  RouterStats before = SharedRouter().Stats();
  api::Result<api::QueryResponse> response = SharedRouter().RankGraph(graph, 1);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response.value().top.size(), 1u);
  EXPECT_EQ(response.value().top[0].node, answer);
  RouterStats after = SharedRouter().Stats();
  EXPECT_EQ(after.shard_calls - before.shard_calls, 1u);
  EXPECT_EQ(after.empty_slices - before.empty_slices, 2u);
}

TEST(ShardRouterTest, CrossShardTiesBreakExactlyLikeTheMonolith) {
  // Three answers with identical reliability (one 0.5 edge each), pinned
  // to three different shards: the merged order must fall back to the
  // monolith's tie-break (ascending node id), not to gather order.
  std::vector<std::vector<std::string>> labels =
      LabelsByShard(SharedRouter().partitioner(), 1);
  QueryGraphBuilder builder;
  std::vector<NodeId> answers;
  for (uint32_t s = 0; s < 3; ++s) {
    NodeId node = builder.Node(1.0, labels[s][0]);
    builder.Edge(builder.Source(), node, 0.5);
    answers.push_back(node);
  }
  QueryGraph graph = std::move(builder).Build(answers);

  api::Result<api::QueryResponse> sharded = SharedRouter().RankGraph(graph, 2);
  api::Result<api::QueryResponse> mono = Monolith().RankGraph(graph, 2);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(mono.ok()) << mono.status();
  EXPECT_EQ(api::RankingFingerprint(sharded.value()),
            api::RankingFingerprint(mono.value()));
  ASSERT_EQ(sharded.value().top.size(), 2u);
  // Ties break toward the smaller node id.
  EXPECT_EQ(sharded.value().top[0].node, answers[0]);
  EXPECT_EQ(sharded.value().top[1].node, answers[1]);
}

TEST(ShardRouterTest, ShardFaultIsTypedUnavailableNeverAPartialAnswer) {
  // Pin one answer to every shard so the faulted shard is always called.
  std::vector<std::vector<std::string>> labels =
      LabelsByShard(SharedRouter().partitioner(), 1);
  QueryGraphBuilder builder;
  std::vector<NodeId> answers;
  for (uint32_t s = 0; s < 3; ++s) {
    NodeId node = builder.Node(1.0, labels[s][0]);
    builder.Edge(builder.Source(), node, 0.25 + 0.25 * s);
    answers.push_back(node);
  }
  QueryGraph graph = std::move(builder).Build(answers);

  RouterStats before = SharedRouter().Stats();
  SharedTransport().InjectFault(1, Status::Internal("injected outage"));
  api::Result<api::QueryResponse> faulted = SharedRouter().RankGraph(graph, 3);
  SharedTransport().InjectFault(1, Status::OK());
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(faulted.status().ToString().find("shard 1"), std::string::npos)
      << faulted.status();
  EXPECT_EQ(SharedRouter().Stats().shard_errors - before.shard_errors, 1u);

  // Healed, the same query merges all three shards again.
  api::Result<api::QueryResponse> healed = SharedRouter().RankGraph(graph, 3);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed.value().top.size(), 3u);
}

TEST(ShardRouterTest, ShortCircuitAccountingRetiresHopelessShards) {
  // Three high-reliability answers on one shard, three low on another:
  // with k = 2 the cutoff (2nd largest lower bound = 0.9) retires the
  // low shard's entire leftover list.
  std::vector<std::vector<std::string>> labels =
      LabelsByShard(SharedRouter().partitioner(), 3);
  QueryGraphBuilder builder;
  std::vector<NodeId> answers;
  for (size_t i = 0; i < 3; ++i) {  // Highs on shard 0.
    NodeId node = builder.Node(1.0, labels[0][i]);
    builder.Edge(builder.Source(), node, 0.9);
    answers.push_back(node);
  }
  for (size_t i = 0; i < 3; ++i) {  // Lows on shard 1.
    NodeId node = builder.Node(1.0, labels[1][i]);
    builder.Edge(builder.Source(), node, 0.1);
    answers.push_back(node);
  }
  QueryGraph graph = std::move(builder).Build(answers);

  RouterStats before = SharedRouter().Stats();
  api::Result<api::QueryResponse> sharded = SharedRouter().RankGraph(graph, 2);
  api::Result<api::QueryResponse> mono = Monolith().RankGraph(graph, 2);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  ASSERT_TRUE(mono.ok()) << mono.status();
  EXPECT_EQ(api::RankingFingerprint(sharded.value()),
            api::RankingFingerprint(mono.value()));
  ASSERT_EQ(sharded.value().top.size(), 2u);
  EXPECT_EQ(sharded.value().top[0].node, answers[0]);
  EXPECT_EQ(sharded.value().top[1].node, answers[1]);

  RouterStats after = SharedRouter().Stats();
  // Shard 0 answered with its top-2 (both merged); shard 1's two
  // gathered candidates could never place: upper 0.1 < cutoff 0.9.
  EXPECT_EQ(after.merged_candidates - before.merged_candidates, 4u);
  EXPECT_EQ(after.shards_short_circuited - before.shards_short_circuited, 1u);
  EXPECT_EQ(after.short_circuited_candidates - before.short_circuited_candidates,
            2u);
  EXPECT_EQ(after.empty_slices - before.empty_slices, 1u);
}

TEST(ShardRouterTest, ForeignSeedIsRejectedCanonicalSeedAccepted) {
  api::QueryRequest request =
      api::MakeProteinFunctionRequest(WellStudiedSymbol(0), 3);
  request.options.seed = Monolith().options().ranking.seed + 1;
  api::Result<api::QueryResponse> foreign = SharedRouter().Query(request);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);

  request.options.seed = Monolith().options().ranking.seed;
  api::Result<api::QueryResponse> canonical = SharedRouter().Query(request);
  ASSERT_TRUE(canonical.ok()) << canonical.status();
  EXPECT_EQ(canonical.value().top.size(), 3u);
}

TEST(ShardRouterTest, PartitionerTransportShardCountMismatchIsRejected) {
  ShardRouterOptions options;
  options.partition.num_shards = 2;  // Transport has 3.
  ShardRouter mismatched(Monolith(), SharedTransport(), options);
  QueryGraph graph = MakeDag(31, 4);
  api::Result<api::QueryResponse> response = mismatched.RankGraph(graph, 1);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

/// A transport whose single shard blocks inside Call until released —
/// holds a router query inflight so the admission cap is observable.
class BlockingTransport : public Transport {
 public:
  uint32_t shard_count() const override { return 1; }

  Result<ShardReply> Call(uint32_t, const ShardQuery& query) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++in_call_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
    ShardReply reply;
    for (NodeId node : query.answers) {
      serve::RankedCandidate candidate;
      candidate.node = node;
      candidate.reliability = 0.5;
      candidate.lower = 0.5;
      candidate.upper = 0.5;
      candidate.exact = true;
      reply.top.push_back(candidate);
    }
    return reply;
  }

  void WaitForCall() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_call_ > 0; });
  }

  void Release() {
    std::unique_lock<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int in_call_ = 0;
  bool released_ = false;
};

TEST(ShardRouterTest, AdmissionCapRejectsWithResourceExhausted) {
  BlockingTransport transport;
  ShardRouterOptions options;
  options.partition.num_shards = 1;
  options.max_inflight = 1;
  ShardRouter router(Monolith(), transport, options);

  QueryGraphBuilder builder;
  NodeId answer = builder.Node(1.0, "capped-answer");
  builder.Edge(builder.Source(), answer, 0.5);
  QueryGraph graph = std::move(builder).Build({answer});

  api::Result<api::QueryResponse> first = Status::Internal("unset");
  std::thread holder(
      [&] { first = router.RankGraph(graph, 1); });
  transport.WaitForCall();

  // The slot is taken: the second query is rejected, typed, counted.
  api::Result<api::QueryResponse> second = router.RankGraph(graph, 1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  RouterStats held = router.Stats();
  EXPECT_EQ(held.admission_rejected, 1u);
  EXPECT_EQ(held.inflight, 1u);
  EXPECT_EQ(held.peak_inflight, 1u);

  transport.Release();
  holder.join();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first.value().top.size(), 1u);
  EXPECT_EQ(first.value().top[0].node, answer);
  RouterStats drained = router.Stats();
  EXPECT_EQ(drained.inflight, 0u);
  EXPECT_EQ(drained.queries, 1u);
  EXPECT_EQ(drained.queries_ok, 1u);
}

TEST(ShardRouterTest, ConcurrentQueriesStayBitIdentical) {
  ShardRouter& router = SharedRouter();
  std::vector<QueryGraph> graphs;
  std::vector<std::vector<std::pair<NodeId, double>>> references;
  for (uint64_t seed = 41; seed < 43; ++seed) {
    graphs.push_back(MakeDag(seed, 8));
    api::Result<api::QueryResponse> mono =
        Monolith().RankGraph(graphs.back(), 4);
    ASSERT_TRUE(mono.ok()) << mono.status();
    references.push_back(api::RankingFingerprint(mono.value()));
  }

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const size_t g = static_cast<size_t>((t + i) % 2);
        api::Result<api::QueryResponse> response =
            router.RankGraph(graphs[g], 4);
        if (!response.ok() ||
            api::RankingFingerprint(response.value()) != references[g]) {
          ++mismatches;
        }
        (void)router.Stats();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace biorank::shard
