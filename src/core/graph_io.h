// Text serialization round-trip for query graphs, used by test
// fixtures, the CLI example, and offline tooling.

#ifndef BIORANK_CORE_GRAPH_IO_H_
#define BIORANK_CORE_GRAPH_IO_H_

#include <string>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Serializes a query graph to a line-oriented text format:
///
///   biorank-graph 1
///   node <id> <p> <entity_set> <label...>
///   edge <from> <to> <q>
///   source <id>
///   answers <id> <id> ...
///
/// Dead (tombstoned) elements are compacted away; ids are renumbered
/// densely. Labels may contain spaces (they extend to end of line);
/// entity-set names may not.
std::string SerializeQueryGraph(const QueryGraph& query_graph);

/// Parses the format produced by SerializeQueryGraph. Fails with
/// InvalidArgument on malformed input (bad header, unknown directive,
/// out-of-range ids, missing source).
Result<QueryGraph> ParseQueryGraph(const std::string& text);

/// Convenience wrappers over files.
Status WriteQueryGraphFile(const QueryGraph& query_graph,
                           const std::string& path);
Result<QueryGraph> ReadQueryGraphFile(const std::string& path);

}  // namespace biorank

#endif  // BIORANK_CORE_GRAPH_IO_H_
