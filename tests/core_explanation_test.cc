#include "core/explanation.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(ExplanationTest, SingleEdgePath) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<EvidencePath>> paths = ExplainAnswer(g, t);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths.value().size(), 1u);
  const EvidencePath& path = paths.value()[0];
  EXPECT_EQ(path.length(), 1);
  EXPECT_EQ(path.nodes.front(), g.source);
  EXPECT_EQ(path.nodes.back(), t);
  EXPECT_NEAR(path.probability, 0.4, 1e-12);  // 1 * 0.5 * 0.8.
}

TEST(ExplanationTest, PrefersStrongerPath) {
  QueryGraphBuilder b;
  NodeId weak = b.Node(1.0, "weak");
  NodeId strong = b.Node(1.0, "strong");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), weak, 0.2);
  b.Edge(weak, t, 0.2);
  b.Edge(b.Source(), strong, 0.9);
  b.Edge(strong, t, 0.9);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<EvidencePath>> paths = ExplainAnswer(g, t);
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths.value().size(), 2u);
  EXPECT_EQ(paths.value()[0].nodes[1], strong);
  EXPECT_NEAR(paths.value()[0].probability, 0.81, 1e-12);
  EXPECT_EQ(paths.value()[1].nodes[1], weak);
  EXPECT_NEAR(paths.value()[1].probability, 0.04, 1e-12);
}

TEST(ExplanationTest, PathsAreSortedDescending) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  ExplanationOptions options;
  options.max_paths = 10;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(g, g.answers[0], options);
  ASSERT_TRUE(paths.ok());
  // The bridge has exactly 3 loopless s->u paths.
  EXPECT_EQ(paths.value().size(), 3u);
  for (size_t i = 1; i < paths.value().size(); ++i) {
    EXPECT_GE(paths.value()[i - 1].probability,
              paths.value()[i].probability);
  }
  // Two 2-edge paths at 0.25, one 3-edge path at 0.125.
  EXPECT_NEAR(paths.value()[0].probability, 0.25, 1e-12);
  EXPECT_NEAR(paths.value()[1].probability, 0.25, 1e-12);
  EXPECT_NEAR(paths.value()[2].probability, 0.125, 1e-12);
}

TEST(ExplanationTest, PathsAreLoopless) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, t, 0.5);
  b.Edge(t, a, 0.9);  // Cycle.
  QueryGraph g = std::move(b).Build({t});
  ExplanationOptions options;
  options.max_paths = 10;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(g, t, options);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths.value().size(), 1u);  // Only s->a->t is loopless.
  EXPECT_EQ(paths.value()[0].length(), 2);
}

TEST(ExplanationTest, UnreachableTargetHasNoPaths) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<EvidencePath>> paths = ExplainAnswer(g, t);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths.value().empty());
}

TEST(ExplanationTest, MinProbabilityFilters) {
  QueryGraphBuilder b;
  NodeId weak = b.Node(1.0, "weak");
  NodeId strong = b.Node(1.0, "strong");
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), weak, 0.1);
  b.Edge(weak, t, 0.1);
  b.Edge(b.Source(), strong, 0.9);
  b.Edge(strong, t, 0.9);
  QueryGraph g = std::move(b).Build({t});
  ExplanationOptions options;
  options.min_probability = 0.5;
  Result<std::vector<EvidencePath>> paths =
      ExplainAnswer(g, t, options);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths.value().size(), 1u);
}

TEST(ExplanationTest, RejectsBadArguments) {
  QueryGraph g = MakeFig4aSerialParallel();
  EXPECT_FALSE(ExplainAnswer(g, 999).ok());
  ExplanationOptions options;
  options.max_paths = 0;
  EXPECT_FALSE(ExplainAnswer(g, g.answers[0], options).ok());
}

TEST(ExplanationTest, ZeroProbabilityEdgesAreUnusable) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.0);
  QueryGraph g = std::move(b).Build({t});
  Result<std::vector<EvidencePath>> paths = ExplainAnswer(g, t);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths.value().empty());
}

TEST(ExplanationTest, FormatIncludesLabelsAndProbability) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.8, "GO:0000001");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  std::vector<EvidencePath> paths = ExplainAnswer(g, t).value();
  std::string text = FormatEvidencePath(g, paths[0]);
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("GO:0000001"), std::string::npos);
  EXPECT_NE(text.find("q=0.5"), std::string::npos);
  EXPECT_NE(text.find("p=0.4"), std::string::npos);
}

TEST(ExplanationTest, KBestOnRandomDagsAreDistinctAndValid) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    testing::RandomDagOptions options;
    options.layers = 3;
    options.nodes_per_layer = 4;
    options.answers = 2;
    QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
    ExplanationOptions explain;
    explain.max_paths = 6;
    Result<std::vector<EvidencePath>> paths =
        ExplainAnswer(g, g.answers[0], explain);
    ASSERT_TRUE(paths.ok());
    std::set<std::vector<EdgeId>> edge_sets;
    double previous = 2.0;
    for (const EvidencePath& path : paths.value()) {
      // Valid endpoints, connected, sorted, distinct.
      EXPECT_EQ(path.nodes.front(), g.source);
      EXPECT_EQ(path.nodes.back(), g.answers[0]);
      ASSERT_EQ(path.edges.size() + 1, path.nodes.size());
      for (size_t i = 0; i < path.edges.size(); ++i) {
        const GraphEdge& edge = g.graph.edge(path.edges[i]);
        EXPECT_EQ(edge.from, path.nodes[i]);
        EXPECT_EQ(edge.to, path.nodes[i + 1]);
      }
      EXPECT_LE(path.probability, previous + 1e-12);
      previous = path.probability;
      EXPECT_TRUE(edge_sets.insert(path.edges).second);
    }
  }
}

}  // namespace
}  // namespace biorank
