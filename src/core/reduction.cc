#include "core/reduction.h"

#include <unordered_map>
#include <vector>

namespace biorank {

namespace {

/// One full pass of all enabled rules. Returns true if anything changed.
bool ReductionPass(QueryGraph& query_graph, const ReductionOptions& options,
                   const std::vector<bool>& protected_nodes,
                   ReductionStats& stats) {
  ProbabilisticEntityGraph& graph = query_graph.graph;
  bool changed = false;

  // Rule: delete self-loops (reachability is unaffected by them).
  if (options.delete_self_loops) {
    for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
      if (!graph.IsValidEdge(e)) continue;
      if (graph.edge(e).from == graph.edge(e).to) {
        graph.RemoveEdge(e);
        ++stats.self_loop_deletions;
        changed = true;
      }
    }
  }

  // Rule: merge parallel edges, 1 - prod(1 - q).
  if (options.merge_parallel) {
    for (NodeId x = 0; x < graph.node_capacity(); ++x) {
      if (!graph.IsValidNode(x)) continue;
      std::unordered_map<NodeId, std::vector<EdgeId>> by_target;
      graph.ForEachOutEdge(
          x, [&](EdgeId e) { by_target[graph.edge(e).to].push_back(e); });
      for (auto& [target, edges] : by_target) {
        if (edges.size() < 2) continue;
        double fail_all = 1.0;
        for (EdgeId e : edges) fail_all *= 1.0 - graph.edge(e).q;
        // Keep the first edge, fold the others into it.
        graph.SetEdgeProb(edges[0], 1.0 - fail_all);
        for (size_t i = 1; i < edges.size(); ++i) graph.RemoveEdge(edges[i]);
        stats.parallel_merges += static_cast<int>(edges.size()) - 1;
        changed = true;
      }
    }
  }

  // Rule: collapse serial interior nodes.
  if (options.collapse_serial) {
    for (NodeId x = 0; x < graph.node_capacity(); ++x) {
      if (!graph.IsValidNode(x) || protected_nodes[x]) continue;
      std::vector<EdgeId> in = graph.InEdges(x);
      std::vector<EdgeId> out = graph.OutEdges(x);
      if (in.size() != 1 || out.size() != 1) continue;
      NodeId y = graph.edge(in[0]).from;
      NodeId z = graph.edge(out[0]).to;
      if (y == x || z == x) continue;  // Self-loop shapes; other rules apply.
      double q = graph.edge(in[0]).q * graph.node(x).p * graph.edge(out[0]).q;
      graph.RemoveNode(x);  // Also removes both incident edges.
      if (y != z) {
        graph.AddEdge(y, z, q).value();
      }
      // When y == z the spliced path would be a self-loop; drop it.
      ++stats.serial_collapses;
      changed = true;
    }
  }

  // Rule: delete sinks that are not protected.
  if (options.delete_sinks) {
    bool removed = true;
    while (removed) {  // Deleting a sink can create new sinks upstream.
      removed = false;
      for (NodeId x = 0; x < graph.node_capacity(); ++x) {
        if (!graph.IsValidNode(x) || protected_nodes[x]) continue;
        if (graph.OutDegree(x) == 0) {
          graph.RemoveNode(x);
          ++stats.sink_deletions;
          removed = true;
          changed = true;
        }
      }
    }
  }

  // Rule: delete orphans (no in-edges) other than the source. Unreachable
  // answers are protected and stay (they keep score 0).
  if (options.delete_orphans) {
    bool removed = true;
    while (removed) {
      removed = false;
      for (NodeId x = 0; x < graph.node_capacity(); ++x) {
        if (!graph.IsValidNode(x) || protected_nodes[x]) continue;
        if (graph.InDegree(x) == 0) {
          graph.RemoveNode(x);
          ++stats.orphan_deletions;
          removed = true;
          changed = true;
        }
      }
    }
  }

  return changed;
}

}  // namespace

ReductionStats ReduceQueryGraph(QueryGraph& query_graph,
                                const ReductionOptions& options) {
  ReductionStats stats;
  ProbabilisticEntityGraph& graph = query_graph.graph;
  stats.nodes_before = graph.num_nodes();
  stats.edges_before = graph.num_edges();

  std::vector<bool> protected_nodes(graph.node_capacity(), false);
  if (query_graph.source >= 0 &&
      query_graph.source < graph.node_capacity()) {
    protected_nodes[query_graph.source] = true;
  }
  for (NodeId t : query_graph.answers) {
    if (t >= 0 && t < graph.node_capacity()) protected_nodes[t] = true;
  }

  while (ReductionPass(query_graph, options, protected_nodes, stats)) {
    ++stats.passes;
  }

  stats.nodes_after = graph.num_nodes();
  stats.edges_after = graph.num_edges();
  return stats;
}

}  // namespace biorank
