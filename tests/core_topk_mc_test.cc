#include "core/topk_mc.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

QueryGraph WellSeparatedAnswers() {
  QueryGraphBuilder b;
  NodeId strong = b.Node(1.0, "strong");
  NodeId mid = b.Node(1.0, "mid");
  NodeId weak = b.Node(1.0, "weak");
  b.Edge(b.Source(), strong, 0.9);
  b.Edge(b.Source(), mid, 0.5);
  b.Edge(b.Source(), weak, 0.1);
  return std::move(b).Build({strong, mid, weak});
}

TEST(TopKTest, SeparatesClearBoundaryQuickly) {
  QueryGraph g = WellSeparatedAnswers();
  TopKOptions options;
  options.k = 1;
  options.batch_trials = 200;
  options.max_trials = 50000;
  Result<TopKResult> result = RankTopKAdaptive(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().separated);
  EXPECT_LT(result.value().trials_used, 5000);  // 0.9 vs 0.5 is easy.
  EXPECT_EQ(result.value().ranking[0].node, g.answers[0]);
}

TEST(TopKTest, OrderingMatchesTruth) {
  QueryGraph g = WellSeparatedAnswers();
  TopKOptions options;
  options.k = 2;
  Result<TopKResult> result = RankTopKAdaptive(g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().ranking.size(), 3u);
  EXPECT_EQ(result.value().ranking[0].node, g.answers[0]);
  EXPECT_EQ(result.value().ranking[1].node, g.answers[1]);
  EXPECT_EQ(result.value().ranking[2].node, g.answers[2]);
  EXPECT_NEAR(result.value().ranking[0].score, 0.9, 0.05);
}

TEST(TopKTest, ExactTieExhaustsBudgetUnseparated) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(b.Source(), bb, 0.5);
  QueryGraph g = std::move(b).Build({a, bb});
  TopKOptions options;
  options.k = 1;
  options.batch_trials = 500;
  options.max_trials = 4000;
  Result<TopKResult> result = RankTopKAdaptive(g, options);
  ASSERT_TRUE(result.ok());
  // Equal true scores: with overwhelming probability the estimates stay
  // within the confidence radius until the budget runs out.
  EXPECT_EQ(result.value().trials_used, 4000);
  EXPECT_FALSE(result.value().separated);
}

TEST(TopKTest, HarderBoundaryNeedsMoreTrials) {
  QueryGraphBuilder b1;
  NodeId a1 = b1.Node(1.0);
  NodeId b1n = b1.Node(1.0);
  b1.Edge(b1.Source(), a1, 0.9);
  b1.Edge(b1.Source(), b1n, 0.2);
  QueryGraph easy = std::move(b1).Build({a1, b1n});

  QueryGraphBuilder b2;
  NodeId a2 = b2.Node(1.0);
  NodeId b2n = b2.Node(1.0);
  b2.Edge(b2.Source(), a2, 0.55);
  b2.Edge(b2.Source(), b2n, 0.45);
  QueryGraph hard = std::move(b2).Build({a2, b2n});

  TopKOptions options;
  options.k = 1;
  options.batch_trials = 100;
  options.max_trials = 200000;
  options.seed = 5;
  int64_t easy_trials =
      RankTopKAdaptive(easy, options).value().trials_used;
  int64_t hard_trials =
      RankTopKAdaptive(hard, options).value().trials_used;
  EXPECT_LT(easy_trials, hard_trials);
}

TEST(TopKTest, KLargerThanAnswerSetSeparatesTrivially) {
  QueryGraph g = WellSeparatedAnswers();
  TopKOptions options;
  options.k = 10;
  options.batch_trials = 100;
  Result<TopKResult> result = RankTopKAdaptive(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().separated);
  EXPECT_EQ(result.value().trials_used, 100);  // One batch.
}

TEST(TopKTest, DeterministicForSeed) {
  QueryGraph g = WellSeparatedAnswers();
  TopKOptions options;
  options.seed = 77;
  Result<TopKResult> a = RankTopKAdaptive(g, options);
  Result<TopKResult> b = RankTopKAdaptive(g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().trials_used, b.value().trials_used);
  ASSERT_EQ(a.value().ranking.size(), b.value().ranking.size());
  for (size_t i = 0; i < a.value().ranking.size(); ++i) {
    EXPECT_EQ(a.value().ranking[i].node, b.value().ranking[i].node);
    EXPECT_DOUBLE_EQ(a.value().ranking[i].score,
                     b.value().ranking[i].score);
  }
}

TEST(TopKTest, WorksOnBridgeWithReductions) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  TopKOptions options;
  options.k = 1;
  options.max_trials = 50000;
  Result<TopKResult> result = RankTopKAdaptive(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().ranking[0].score, 15.0 / 32.0, 0.05);
}

TEST(TopKTest, RejectsBadOptions) {
  QueryGraph g = WellSeparatedAnswers();
  TopKOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(RankTopKAdaptive(g, bad_k).ok());
  TopKOptions bad_budget;
  bad_budget.batch_trials = 1000;
  bad_budget.max_trials = 10;
  EXPECT_FALSE(RankTopKAdaptive(g, bad_budget).ok());
  TopKOptions bad_confidence;
  bad_confidence.confidence = 1.5;
  EXPECT_FALSE(RankTopKAdaptive(g, bad_confidence).ok());
}

}  // namespace
}  // namespace biorank
