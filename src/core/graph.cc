#include "core/graph.h"

#include <algorithm>

namespace biorank {

namespace {

double ClampProb(double p) { return std::min(1.0, std::max(0.0, p)); }

}  // namespace

NodeId ProbabilisticEntityGraph::AddNode(double p, std::string label,
                                         std::string entity_set) {
  NodeId id = node_capacity();
  nodes_.push_back(GraphNode{ClampProb(p), std::move(label),
                             std::move(entity_set), /*alive=*/true});
  out_.emplace_back();
  in_.emplace_back();
  ++num_alive_nodes_;
  return id;
}

Result<EdgeId> ProbabilisticEntityGraph::AddEdge(NodeId from, NodeId to,
                                                 double q) {
  if (!IsValidNode(from)) {
    return Status::InvalidArgument("AddEdge: invalid from node " +
                                   std::to_string(from));
  }
  if (!IsValidNode(to)) {
    return Status::InvalidArgument("AddEdge: invalid to node " +
                                   std::to_string(to));
  }
  EdgeId id = edge_capacity();
  edges_.push_back(GraphEdge{from, to, ClampProb(q), /*alive=*/true});
  out_[from].push_back(id);
  in_[to].push_back(id);
  ++num_alive_edges_;
  return id;
}

Status ProbabilisticEntityGraph::RemoveNode(NodeId id) {
  if (id < 0 || id >= node_capacity()) {
    return Status::OutOfRange("RemoveNode: id " + std::to_string(id));
  }
  if (!nodes_[id].alive) return Status::OK();
  for (EdgeId e : out_[id]) {
    if (edges_[e].alive) {
      edges_[e].alive = false;
      --num_alive_edges_;
    }
  }
  for (EdgeId e : in_[id]) {
    if (edges_[e].alive) {
      edges_[e].alive = false;
      --num_alive_edges_;
    }
  }
  nodes_[id].alive = false;
  --num_alive_nodes_;
  return Status::OK();
}

Status ProbabilisticEntityGraph::RemoveEdge(EdgeId id) {
  if (id < 0 || id >= edge_capacity()) {
    return Status::OutOfRange("RemoveEdge: id " + std::to_string(id));
  }
  if (edges_[id].alive) {
    edges_[id].alive = false;
    --num_alive_edges_;
  }
  return Status::OK();
}

Status ProbabilisticEntityGraph::SetNodeProb(NodeId id, double p) {
  if (!IsValidNode(id)) {
    return Status::OutOfRange("SetNodeProb: id " + std::to_string(id));
  }
  nodes_[id].p = ClampProb(p);
  return Status::OK();
}

Status ProbabilisticEntityGraph::SetEdgeProb(EdgeId id, double q) {
  if (!IsValidEdge(id)) {
    return Status::OutOfRange("SetEdgeProb: id " + std::to_string(id));
  }
  edges_[id].q = ClampProb(q);
  return Status::OK();
}

std::vector<EdgeId> ProbabilisticEntityGraph::OutEdges(NodeId id) const {
  std::vector<EdgeId> result;
  for (EdgeId e : out_[id]) {
    if (edges_[e].alive) result.push_back(e);
  }
  return result;
}

std::vector<EdgeId> ProbabilisticEntityGraph::InEdges(NodeId id) const {
  std::vector<EdgeId> result;
  for (EdgeId e : in_[id]) {
    if (edges_[e].alive) result.push_back(e);
  }
  return result;
}

int ProbabilisticEntityGraph::OutDegree(NodeId id) const {
  int degree = 0;
  for (EdgeId e : out_[id]) {
    if (edges_[e].alive) ++degree;
  }
  return degree;
}

int ProbabilisticEntityGraph::InDegree(NodeId id) const {
  int degree = 0;
  for (EdgeId e : in_[id]) {
    if (edges_[e].alive) ++degree;
  }
  return degree;
}

std::vector<NodeId> ProbabilisticEntityGraph::AliveNodes() const {
  std::vector<NodeId> result;
  result.reserve(num_alive_nodes_);
  for (NodeId i = 0; i < node_capacity(); ++i) {
    if (nodes_[i].alive) result.push_back(i);
  }
  return result;
}

std::vector<EdgeId> ProbabilisticEntityGraph::AliveEdges() const {
  std::vector<EdgeId> result;
  result.reserve(num_alive_edges_);
  for (EdgeId i = 0; i < edge_capacity(); ++i) {
    if (edges_[i].alive) result.push_back(i);
  }
  return result;
}

CompactGraphView CompactGraphView::FromGraph(
    const ProbabilisticEntityGraph& graph) {
  CompactGraphView view;
  int n = graph.node_capacity();
  view.node_p.assign(n, 0.0);
  std::vector<int32_t> out_degree(n, 0), in_degree(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    if (!graph.IsValidNode(i)) continue;
    view.node_p[i] = graph.node(i).p;
    out_degree[i] = graph.OutDegree(i);
    in_degree[i] = graph.InDegree(i);
  }
  view.out_offset.assign(n + 1, 0);
  view.in_offset.assign(n + 1, 0);
  for (int i = 0; i < n; ++i) {
    view.out_offset[i + 1] = view.out_offset[i] + out_degree[i];
    view.in_offset[i + 1] = view.in_offset[i] + in_degree[i];
  }
  int total = view.out_offset[n];
  view.edge_to.assign(total, kInvalidNode);
  view.edge_q.assign(total, 0.0);
  view.edge_from.assign(total, kInvalidNode);
  view.in_edge_q.assign(total, 0.0);
  std::vector<int32_t> out_cursor(view.out_offset.begin(),
                                  view.out_offset.end() - 1);
  std::vector<int32_t> in_cursor(view.in_offset.begin(),
                                 view.in_offset.end() - 1);
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.IsValidEdge(e)) continue;
    const GraphEdge& edge = graph.edge(e);
    int32_t oc = out_cursor[edge.from]++;
    view.edge_to[oc] = edge.to;
    view.edge_q[oc] = edge.q;
    int32_t ic = in_cursor[edge.to]++;
    view.edge_from[ic] = edge.from;
    view.in_edge_q[ic] = edge.q;
  }
  return view;
}

}  // namespace biorank
