// Quickstart: build a small probabilistic query graph by hand and rank its
// answers with all five relevance functions of the paper.
//
// Run:  ./build/examples/quickstart

#include <iostream>

#include "core/query_graph.h"
#include "core/ranking.h"
#include "core/reduction.h"
#include "core/trial_bound.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "== BioRank quickstart ==\n\n"
            << "Figure 4's two canonical topologies, scored by all five\n"
            << "relevance functions.\n\n";

  struct Example {
    const char* title;
    QueryGraph graph;
  };
  Example examples[] = {
      {"Figure 4a: serial-parallel graph", MakeFig4aSerialParallel()},
      {"Figure 4b: Wheatstone bridge", MakeFig4bWheatstoneBridge()},
  };

  Ranker ranker;
  for (Example& example : examples) {
    std::cout << example.title << " (" << example.graph.graph.num_nodes()
              << " nodes, " << example.graph.graph.num_edges()
              << " edges)\n";
    TextTable table({"Method", "Score of answer node u"});
    for (RankingMethod method : AllRankingMethods()) {
      Result<std::vector<RankedAnswer>> ranked =
          ranker.Rank(example.graph, method);
      if (!ranked.ok()) {
        table.AddRow({RankingMethodName(method), ranked.status().ToString()});
        continue;
      }
      table.AddRow({RankingMethodName(method),
                    FormatCompact(ranked.value()[0].score, 4)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Graph reductions (Section 3.1) on Figure 4a:\n";
  QueryGraph reducible = MakeFig4aSerialParallel();
  ReductionStats stats = ReduceQueryGraph(reducible);
  std::cout << "  " << stats.nodes_before << " nodes / " << stats.edges_before
            << " edges  ->  " << stats.nodes_after << " nodes / "
            << stats.edges_after << " edges  ("
            << FormatCompact(stats.RemovedFraction() * 100, 1)
            << "% of elements removed)\n\n";

  std::cout << "Theorem 3.1: Monte Carlo trials needed to separate scores\n"
            << "eps = 0.02 apart with 95% confidence: "
            << RequiredMcTrials(0.02, 0.05).value()
            << " (the paper rounds this to 10,000)\n";
  return 0;
}
