// Reproduces Table 3: the rank of each hypothetical protein's
// expert-assigned function under the five methods. The paper's 11
// bacterial proteins land at mean rank 2.3 (Rel) / 2.5 (Prop) / 3.8
// (Diff) / 3.5 (InEdge, PathC) versus 15.3 for random ordering.

#include <iostream>
#include <map>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "integrate/scenario_harness.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Table 3: hypothetical proteins (scenario 3) ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("table3_scenario3");
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario3Hypothetical);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  TextTable table({"Protein", "Function", "Rel", "Prop", "Diff", "InEdge",
                   "PathC", "Random"});
  CsvWriter csv({"protein", "function", "method", "rank_lo", "rank_hi"});
  std::map<std::string, std::vector<double>> midpoints;
  std::vector<double> random_midpoints;

  for (const ScenarioQuery& query : queries.value()) {
    for (NodeId gold : query.relevant) {
      std::vector<std::string> cells = {
          query.spec.gene_symbol, query.graph.graph.node(gold).label};
      for (RankingMethod method : AllRankingMethods()) {
        const char* name = RankingMethodName(method);
        Result<std::vector<RankedAnswer>> ranked =
            harness.ranker().Rank(query.graph, method);
        std::string cell = "-";
        if (ranked.ok()) {
          for (const RankedAnswer& answer : ranked.value()) {
            if (answer.node == gold) {
              cell = FormatRankInterval(answer.rank_lo, answer.rank_hi);
              midpoints[name].push_back(
                  0.5 * (answer.rank_lo + answer.rank_hi));
              csv.AddRow({query.spec.gene_symbol,
                          query.graph.graph.node(gold).label, name,
                          std::to_string(answer.rank_lo),
                          std::to_string(answer.rank_hi)});
              break;
            }
          }
        }
        cells.push_back(cell);
      }
      cells.push_back("1-" + std::to_string(query.answer_count));
      random_midpoints.push_back(0.5 * (1 + query.answer_count));
      table.AddRow(cells);
    }
  }

  table.AddSeparator();
  std::vector<std::string> mean_row = {"Mean", ""};
  std::vector<std::string> stdv_row = {"Stdv", ""};
  for (const char* name : {"Rel", "Prop", "Diff", "InEdge", "PathC"}) {
    SampleStats stats = ComputeStats(midpoints[name]);
    mean_row.push_back(FormatDouble(stats.mean, 1));
    stdv_row.push_back(FormatDouble(stats.stddev, 1));
    report.AddRow({{"method", name},
                   {"mean_midpoint_rank", stats.mean},
                   {"stdev", stats.stddev}});
  }
  SampleStats random_stats = ComputeStats(random_midpoints);
  mean_row.push_back(FormatDouble(random_stats.mean, 1));
  stdv_row.push_back(FormatDouble(random_stats.stddev, 1));
  table.AddRow(mean_row);
  table.AddRow(stdv_row);
  table.Print(std::cout);

  std::cout << "\nPaper means: Rel 2.3, Prop 2.5, Diff 3.8, InEdge 3.5, "
               "PathC 3.5, Random 15.3.\n";
  bench::MaybeWriteCsv(csv, "table3_scenario3");
  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("random_mean_midpoint_rank", random_stats.mean);
  return report.Write().ok() ? 0 : 1;
}
