// Cardinality composition algebra: how [1:1], [1:n], [n:1], [n:m]
// annotations compose along paths, the core oracle behind the
// Theorem 3.2 reducibility check.

#ifndef BIORANK_SCHEMA_COMPOSITION_H_
#define BIORANK_SCHEMA_COMPOSITION_H_

#include <map>
#include <string>
#include <utility>

#include "schema/er_schema.h"

namespace biorank {

/// Composition algebra on relationship cardinalities (Section 3.1):
///   [1:1] o X = X,  X o [1:1] = X
///   [1:n] o [1:n] = [1:n]
///   [n:1] o [n:1] = [n:1]
///   anything o [m:n] = [m:n] o anything = [m:n]
///   [1:n] o [n:1] and [n:1] o [1:n] = [m:n] in general ("but with domain
///   knowledge we can often determine the type of the composed
///   relationship" — see CompositionOracle).
Cardinality Compose(Cardinality first, Cardinality second);

/// Domain-knowledge overrides for otherwise-ambiguous compositions.
/// Theorem 3.2's reducibility check needs to know when a [1:n] o [n:1]
/// composition happens to be [1:n], [n:1], or [1:1] at the data level;
/// experts register those facts here keyed by the two relationship names.
class CompositionOracle {
 public:
  /// Declares that composing `first_rel` then `second_rel` has the given
  /// cardinality.
  void Declare(const std::string& first_rel, const std::string& second_rel,
               Cardinality result);

  /// Resulting cardinality of first_rel o second_rel: the declared
  /// override if any, otherwise the generic algebra on the two
  /// relationships' own cardinalities.
  Cardinality Resolve(const RelationshipDef& first,
                      const RelationshipDef& second) const;

  size_t size() const { return overrides_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, Cardinality> overrides_;
};

}  // namespace biorank

#endif  // BIORANK_SCHEMA_COMPOSITION_H_
