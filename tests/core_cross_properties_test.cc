// Second-round cross-algorithm properties covering the extension modules
// and cyclic inputs (the first round, core_properties_test.cc, covers the
// DAG core).

#include <gtest/gtest.h>

#include "core/graph_io.h"
#include "core/ranking.h"
#include "core/reduction.h"
#include "core/reliability_bounds.h"
#include "core/reliability_exact.h"
#include "core/topk_mc.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

class CyclicGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(CyclicGraphProperty, ReductionPreservesReliabilityWithCycles) {
  // The Section 3.1 rules must stay sound on arbitrary digraphs, not just
  // the workflow DAGs the mediator produces.
  Rng rng(9100 + GetParam());
  QueryGraph g =
      testing::MakeRandomDigraph(rng, /*num_nodes=*/5, /*edge_density=*/0.35,
                                 /*num_answers=*/2);
  std::vector<double> before;
  bool feasible = true;
  for (NodeId t : g.answers) {
    Result<double> r = ExactReliabilityBruteForce(g, t, 24);
    if (!r.ok()) {
      feasible = false;  // Too many uncertain elements this seed.
      break;
    }
    before.push_back(r.value());
  }
  if (!feasible) GTEST_SKIP() << "seed produced too many uncertain elements";
  ReduceQueryGraph(g);
  for (size_t i = 0; i < g.answers.size(); ++i) {
    Result<double> r = ExactReliabilityBruteForce(g, g.answers[i], 24);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_NEAR(before[i], r.value(), 1e-10) << "answer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicGraphProperty, ::testing::Range(0, 8));

class TopKProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKProperty, AdaptiveTopKAgreesWithExactOrdering) {
  Rng rng(9200 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 4;
  options.edge_density = 0.5;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);

  Result<std::vector<double>> exact = ExactReliabilityAllAnswers(g);
  ASSERT_TRUE(exact.ok()) << exact.status();
  // Find the exact best answer; skip seeds where the top two are within
  // MC resolution.
  size_t best = 0;
  double best_score = -1.0, second = -1.0;
  for (size_t i = 0; i < exact.value().size(); ++i) {
    if (exact.value()[i] > best_score) {
      second = best_score;
      best_score = exact.value()[i];
      best = i;
    } else if (exact.value()[i] > second) {
      second = exact.value()[i];
    }
  }
  if (best_score - second < 0.05) {
    GTEST_SKIP() << "top answers too close for a cheap MC check";
  }

  TopKOptions topk;
  topk.k = 1;
  topk.seed = 9200 + GetParam();
  topk.max_trials = 100000;
  Result<TopKResult> result = RankTopKAdaptive(g, topk);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().separated);
  EXPECT_EQ(result.value().ranking[0].node, g.answers[best]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKProperty, ::testing::Range(0, 8));

class GraphIoProperty : public ::testing::TestWithParam<int> {};

TEST_P(GraphIoProperty, RoundTripPreservesAllFiveRankings) {
  Rng rng(9300 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 3;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  Result<QueryGraph> parsed = ParseQueryGraph(SerializeQueryGraph(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  RankerOptions ranker_options;
  ranker_options.mc.seed = 9300 + GetParam();
  Ranker ranker(ranker_options);
  for (RankingMethod method : AllRankingMethods()) {
    Result<std::vector<RankedAnswer>> a = ranker.Rank(g, method);
    Result<std::vector<RankedAnswer>> b =
        ranker.Rank(parsed.value(), method);
    ASSERT_TRUE(a.ok()) << RankingMethodName(method);
    ASSERT_TRUE(b.ok()) << RankingMethodName(method);
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      // Same scores in the same rank positions (node ids are renumbered).
      EXPECT_NEAR(a.value()[i].score, b.value()[i].score, 1e-9)
          << RankingMethodName(method) << " position " << i;
      EXPECT_EQ(a.value()[i].rank_lo, b.value()[i].rank_lo);
      EXPECT_EQ(a.value()[i].rank_hi, b.value()[i].rank_hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIoProperty, ::testing::Range(0, 6));

class BoundsVsTopKProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundsVsTopKProperty, BoundsCertifySeparationsWithoutSimulation) {
  // If the lower bound of answer A exceeds the upper bound of answer B,
  // then A's true reliability exceeds B's — the deterministic fast path
  // for ranking decisions. Verify the certificate against exact scores.
  Rng rng(9400 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 3;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  std::vector<ReliabilityBounds> bounds;
  std::vector<double> exact;
  for (NodeId t : g.answers) {
    Result<ReliabilityBounds> b = BoundReliability(g, t);
    ASSERT_TRUE(b.ok()) << b.status();
    bounds.push_back(b.value());
    Result<double> e = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(e.ok());
    exact.push_back(e.value());
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    for (size_t j = 0; j < bounds.size(); ++j) {
      if (i == j) continue;
      if (bounds[i].lower > bounds[j].upper) {
        EXPECT_GT(exact[i], exact[j])
            << "bounds certified a false separation";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsVsTopKProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace biorank
