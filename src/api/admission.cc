#include "api/admission.h"

#include <algorithm>
#include <string>

namespace biorank::api {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

void AdmissionQueue::Ticket::Reset() {
  if (owner_ != nullptr) owner_->Release();
  owner_ = nullptr;
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options) {}

Result<AdmissionQueue::Ticket> AdmissionQueue::Admit(
    Clock::time_point deadline) {
  const Clock::time_point start = Clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (start >= deadline) {
    ++stats_.rejected_deadline;
    return Status::DeadlineExceeded(
        "api: deadline had already passed on arrival at admission");
  }
  const bool unlimited = options_.max_concurrent <= 0;
  if (!unlimited && inflight_ >= options_.max_concurrent) {
    if (waiters_.size() >= options_.max_queue_depth) {
      ++stats_.rejected_capacity;
      return Status::ResourceExhausted(
          "api: admission queue at max depth " +
          std::to_string(options_.max_queue_depth));
    }
    const auto key = std::make_pair(deadline, next_seq_++);
    waiters_.insert(key);
    ++stats_.queued;
    stats_.peak_queue_depth =
        std::max(stats_.peak_queue_depth, waiters_.size());
    bool admitted = false;
    while (true) {
      // A waiter is admitted only when it is the earliest-deadline
      // parked request AND a slot is free; everyone else keeps waiting.
      if (inflight_ < options_.max_concurrent &&
          *waiters_.begin() == key) {
        admitted = true;
        break;
      }
      if (Clock::now() >= deadline) break;
      if (deadline == Clock::time_point::max()) {
        cv_.wait(lock);  // wait_until(max()) can overflow; wait plainly.
      } else {
        cv_.wait_until(lock, deadline);
      }
    }
    waiters_.erase(key);
    // Removing this waiter can promote a new front; releasing a slot
    // below does its own notify. Either way the set changed shape.
    cv_.notify_all();
    if (!admitted) {
      ++stats_.rejected_deadline;
      stats_.queue_wait_s_total += Seconds(Clock::now() - start);
      return Status::DeadlineExceeded(
          "api: deadline passed while queued for admission");
    }
  }
  ++inflight_;
  ++stats_.admitted;
  const double waited = Seconds(Clock::now() - start);
  stats_.queue_wait_s_total += waited;
  Ticket ticket;
  ticket.owner_ = this;
  ticket.queue_s_ = waited;
  return ticket;
}

void AdmissionQueue::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_all();
}

AdmissionStats AdmissionQueue::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats snapshot = stats_;
  snapshot.queue_depth = waiters_.size();
  snapshot.inflight = inflight_;
  return snapshot;
}

}  // namespace biorank::api
