#include "eval/tied_ap.h"

#include <algorithm>

#include "eval/average_precision.h"

namespace biorank {

Result<double> ExpectedApWithTies(const std::vector<TiedGroup>& groups) {
  int total_relevant = 0;
  for (const TiedGroup& g : groups) {
    if (g.size < 0 || g.relevant < 0 || g.relevant > g.size) {
      return Status::InvalidArgument("tied group with inconsistent counts");
    }
    total_relevant += g.relevant;
  }
  if (total_relevant == 0) {
    return Status::InvalidArgument(
        "expected AP undefined: no relevant items");
  }

  double expectation = 0.0;
  int items_before = 0;     // s_g
  int relevant_before = 0;  // K_g
  for (const TiedGroup& g : groups) {
    if (g.relevant > 0) {
      double spread_coeff =
          g.size > 1 ? static_cast<double>(g.relevant - 1) /
                           static_cast<double>(g.size - 1)
                     : 0.0;
      double inner = 0.0;
      for (int j = 1; j <= g.size; ++j) {
        double expected_relevant_at_or_before =
            relevant_before + 1.0 + spread_coeff * (j - 1);
        inner += expected_relevant_at_or_before /
                 static_cast<double>(items_before + j);
      }
      // Each of the g.relevant relevant items contributes the same
      // j-average.
      expectation += g.relevant * inner / static_cast<double>(g.size);
    }
    items_before += g.size;
    relevant_before += g.relevant;
  }
  return expectation / static_cast<double>(total_relevant);
}

std::vector<TiedGroup> GroupsFromRanking(
    const std::vector<RankedAnswer>& ranking,
    const std::unordered_set<NodeId>& relevant) {
  std::vector<TiedGroup> groups;
  size_t i = 0;
  while (i < ranking.size()) {
    // Items in one tie group share the same rank interval.
    int lo = ranking[i].rank_lo;
    TiedGroup group;
    while (i < ranking.size() && ranking[i].rank_lo == lo) {
      ++group.size;
      if (relevant.count(ranking[i].node) > 0) ++group.relevant;
      ++i;
    }
    groups.push_back(group);
  }
  return groups;
}

Result<double> ApForRanking(const std::vector<RankedAnswer>& ranking,
                            const std::unordered_set<NodeId>& relevant) {
  return ExpectedApWithTies(GroupsFromRanking(ranking, relevant));
}

Result<double> SampleApOverPermutations(const std::vector<TiedGroup>& groups,
                                        Rng& rng, int samples) {
  if (samples <= 0) {
    return Status::InvalidArgument("samples must be positive");
  }
  int total_relevant = 0;
  for (const TiedGroup& g : groups) total_relevant += g.relevant;
  if (total_relevant == 0) {
    return Status::InvalidArgument("sampled AP undefined: no relevant items");
  }

  double sum = 0.0;
  std::vector<bool> relevance;
  for (int s = 0; s < samples; ++s) {
    relevance.clear();
    for (const TiedGroup& g : groups) {
      std::vector<bool> block(g.size, false);
      std::fill(block.begin(), block.begin() + g.relevant, true);
      rng.Shuffle(block);
      relevance.insert(relevance.end(), block.begin(), block.end());
    }
    Result<double> ap = AveragePrecision(relevance);
    if (!ap.ok()) return ap.status();
    sum += ap.value();
  }
  return sum / samples;
}

}  // namespace biorank
