#include "eval/rank_correlation.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace biorank {

Result<double> KendallTauB(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("kendall tau: size mismatch");
  }
  size_t n = a.size();
  if (n < 2) {
    return Status::InvalidArgument("kendall tau: need at least two items");
  }
  // O(n^2) pair scan; answer sets are at most a few hundred items.
  int64_t concordant = 0, discordant = 0;
  int64_t ties_a = 0, ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        ++ties_a;
        ++ties_b;
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  int64_t total = static_cast<int64_t>(n) * (n - 1) / 2;
  double denom = std::sqrt(static_cast<double>(total - ties_a)) *
                 std::sqrt(static_cast<double>(total - ties_b));
  if (denom == 0.0) {
    // One side is entirely tied: correlation is undefined; report 0.
    return 0.0;
  }
  return static_cast<double>(concordant - discordant) / denom;
}

Result<double> RankingKendallTau(const std::vector<RankedAnswer>& a,
                                 const std::vector<RankedAnswer>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("ranking tau: size mismatch");
  }
  std::map<NodeId, double> scores_b;
  for (const RankedAnswer& answer : b) scores_b[answer.node] = answer.score;
  std::vector<double> va, vb;
  va.reserve(a.size());
  vb.reserve(a.size());
  for (const RankedAnswer& answer : a) {
    auto it = scores_b.find(answer.node);
    if (it == scores_b.end()) {
      return Status::InvalidArgument(
          "ranking tau: rankings cover different answer sets");
    }
    va.push_back(answer.score);
    vb.push_back(it->second);
  }
  return KendallTauB(va, vb);
}

}  // namespace biorank
