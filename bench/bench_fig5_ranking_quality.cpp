// Reproduces Figure 5: mean/stdev average precision of the five ranking
// methods plus the random baseline, on all three scenarios.
//
// Paper values (mean AP):
//   Scenario 1: Rel .84  Prop .85  Diff .73  InEdge .85  PathC .87  Rand .42
//   Scenario 2: Rel .46  Prop .33  Diff .62  InEdge .15  PathC .16  Rand .12
//   Scenario 3: Rel .68  Prop .62  Diff .48  InEdge .50  PathC .50  Rand .29
// The headline shape: deterministic counting wins (slightly) on
// well-known functions; probabilistic methods win clearly on less-known
// and unknown functions.

#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "eval/experiment_stats.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Figure 5: ranking quality across scenarios ===\n\n";

  bench::WallTimer total_timer;
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  CsvWriter csv({"scenario", "method", "mean_ap", "stdev"});
  bench::JsonReport report("fig5_ranking_quality");

  const ScenarioId scenarios[] = {ScenarioId::kScenario1WellKnown,
                                  ScenarioId::kScenario2LessKnown,
                                  ScenarioId::kScenario3Hypothetical};
  for (ScenarioId scenario : scenarios) {
    Result<std::vector<ScenarioQuery>> queries =
        harness.BuildQueries(scenario);
    if (!queries.ok()) {
      std::cerr << queries.status() << "\n";
      return 1;
    }
    ApExperiment experiment;
    for (const ScenarioQuery& query : queries.value()) {
      if (query.relevant.empty()) continue;  // Gold not retrieved: skip.
      for (RankingMethod method : AllRankingMethods()) {
        Result<double> ap = harness.ApForQuery(query, method);
        if (ap.ok()) experiment.Record(RankingMethodName(method), ap.value());
      }
      Result<double> random = harness.RandomBaselineAp(query);
      if (random.ok()) experiment.Record("Random", random.value());
    }

    std::cout << ScenarioName(scenario) << " ("
              << queries.value().size() << " queries)\n";
    TextTable table({"Method", "Mean AP", "Stdv"});
    for (const std::string& condition : experiment.Conditions()) {
      SampleStats stats = experiment.Summary(condition);
      table.AddRow({condition, FormatDouble(stats.mean, 2),
                    FormatDouble(stats.stddev, 2)});
      csv.AddRow({ScenarioName(scenario), condition,
                  FormatDouble(stats.mean, 4),
                  FormatDouble(stats.stddev, 4)});
      report.AddRow({{"scenario", ScenarioName(scenario)},
                     {"method", condition},
                     {"mean_ap", stats.mean},
                     {"stdev", stats.stddev}});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Paper:  S1  .84 .85 .73 .85 .87 | .42\n"
            << "        S2  .46 .33 .62 .15 .16 | .12\n"
            << "        S3  .68 .62 .48 .50 .50 | .29\n";
  bench::MaybeWriteCsv(csv, "fig5_ranking_quality");
  report.SetWallTime(total_timer.Seconds());
  return report.Write().ok() ? 0 : 1;
}
