// Durability end to end at bench scale: a storage-backed api::Server
// runs the Table-1 mixed workload (batches + live-session deltas +
// session queries), checkpoints mid-run so later phases accumulate a
// WAL tail past the snapshot, then is destroyed ("kill") and re-booted
// from disk. Gates the two recovery contracts:
//
//  * recovery_identical — every recovered session answers its query
//    bit-for-bit identically to the pre-kill server (same handles, no
//    re-opening);
//  * hit_rate_preserved — a full post-recovery query pass keeps the
//    shared reliability cache warm: its hit rate lands within 0.05 of
//    the identical pre-kill pass (snapshot-restored entries plus
//    replay-recomputed ones, nothing silently cold).
//
// Plus the storage-plane throughput numbers: a standalone WAL
// append-path microbench (group fsync on, bench-floor gated),
// checkpoint write throughput, and warm-boot recovery time.
//
// BENCH_durability.json metrics: recovery_identical, hit_rate_preserved,
// mixed_hit_rate before/after, wal_appends_per_sec (floor gate),
// recovery_seconds, checkpoint/replay counters. The storage directory
// is left behind under BIORANK_BENCH_JSON_DIR (when set) so CI can
// upload the snapshot + WAL as artifacts.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/query_graph.h"
#include "storage/codec.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// One update phase's delta for a live session — same shape as the
/// api_server bench: reweights ~2% of evidence edges and revises ~1% of
/// tuple probabilities, deterministic in (session index, phase).
ingest::EvidenceDelta BuildDelta(const QueryGraph& graph,
                                 uint64_t session_index, uint64_t phase) {
  Rng rng = Rng::ForStream(20260809, session_index * 1000 + phase);
  ingest::EvidenceDelta delta;
  std::vector<EdgeId> edges;
  for (EdgeId e : graph.graph.AliveEdges()) {
    if (graph.graph.edge(e).from != graph.source) edges.push_back(e);
  }
  int reweights = std::max<int>(1, static_cast<int>(edges.size()) / 50);
  rng.Shuffle(edges);
  for (int i = 0; i < reweights && i < static_cast<int>(edges.size()); ++i) {
    double q = graph.graph.edge(edges[static_cast<size_t>(i)]).q;
    delta.reweight_edges.push_back(
        {edges[static_cast<size_t>(i)],
         std::min(1.0, std::max(0.05, q * rng.NextUniform(0.9, 1.1)))});
  }
  std::vector<NodeId> nodes = graph.graph.AliveNodes();
  rng.Shuffle(nodes);
  int revisions = std::max<int>(1, static_cast<int>(nodes.size()) / 100);
  int revised = 0;
  for (NodeId n : nodes) {
    if (revised >= revisions) break;
    if (n == graph.source) continue;
    double p = graph.graph.node(n).p;
    delta.revise_node_probs.push_back(
        {n, std::min(1.0, std::max(0.05, p * rng.NextUniform(0.95, 1.05)))});
    ++revised;
  }
  return delta;
}

/// Scrubs a previous run's snapshot/WAL so replays never cross runs.
void ScrubStorageDir(const std::string& dir) {
  for (const auto& [lsn, path] : storage::ListSnapshots(dir)) {
    (void)lsn;
    std::remove(path.c_str());
  }
  std::remove(storage::WalPath(dir).c_str());
}

/// One full query pass over every live session, accumulating cache
/// stats; returns false (after printing the error) on any failure.
bool QueryPass(api::Server& server, const std::vector<api::SessionId>& ids,
               int k, serve::RequestStats* stats,
               std::vector<std::vector<std::pair<NodeId, double>>>* rankings) {
  for (api::SessionId id : ids) {
    api::Result<api::QueryResponse> response = server.QuerySession(id, k);
    if (!response.ok()) {
      std::cerr << response.status() << "\n";
      return false;
    }
    if (stats != nullptr) stats->Add(response.value().stats);
    if (rankings != nullptr) {
      rankings->push_back(api::RankingFingerprint(response.value()));
    }
  }
  return true;
}

}  // namespace

int main() {
  const int k = 10;
  const int phases = std::max(2, bench::Repetitions(3));
  // The storage directory lands next to the JSON reports (or in the
  // working directory without the env), so CI's artifact upload carries
  // the snapshot + WAL alongside BENCH_durability.json.
  const char* json_dir = std::getenv("BIORANK_BENCH_JSON_DIR");
  const std::string store =
      (json_dir != nullptr ? std::string(json_dir) + "/" : std::string()) +
      "biorank_durability_store";
  ScrubStorageDir(store);

  std::cout << "=== Durability: mixed workload -> checkpoint -> kill -> "
               "warm boot over "
            << store << " (" << phases << " phases, top-" << k << ") ===\n\n";

  bench::JsonReport report("durability");
  bench::WallTimer total_timer;

  // ---- The storage-backed server and its live sessions. ----
  api::ServerOptions options;
  options.storage_dir = store;
  auto server = std::make_unique<api::Server>(options);
  if (!server->storage_status().ok()) {
    std::cerr << "storage boot failed: " << server->storage_status() << "\n";
    return 1;
  }
  std::vector<api::QueryRequest> requests;
  for (const ScenarioCase& spec : BuildScenarioCases(
           server->universe(), ScenarioId::kScenario1WellKnown)) {
    requests.push_back(api::MakeProteinFunctionRequest(spec.gene_symbol, k));
  }
  std::vector<api::SessionId> sessions;
  for (const api::QueryRequest& request : requests) {
    api::QueryRequest open = request;
    open.options.top_k = 0;
    api::Result<api::SessionInfo> session = server->OpenSession(open);
    if (!session.ok()) {
      std::cerr << session.status() << "\n";
      return 1;
    }
    sessions.push_back(session.value().id);
  }

  // ---- Phase loop: batch + deltas + session queries, all logged. ----
  serve::RequestStats mixed;
  double update_ms_total = 0.0;
  int updates = 0;
  api::CheckpointReport checkpoint;
  TextTable table({"phase", "batch s", "update ms", "query s", "hit rate"});
  for (int phase = 0; phase < phases; ++phase) {
    bench::WallTimer batch_timer;
    api::Result<std::vector<api::QueryResponse>> batch =
        server->RunBatch(requests);
    double batch_s = batch_timer.Seconds();
    if (!batch.ok()) {
      std::cerr << batch.status() << "\n";
      return 1;
    }
    for (const api::QueryResponse& response : batch.value()) {
      mixed.Add(response.stats);
    }

    double phase_update_ms = 0.0;
    for (size_t i = 0; i < sessions.size(); ++i) {
      api::Result<QueryGraph> snapshot = server->SessionSnapshot(sessions[i]);
      if (!snapshot.ok()) {
        std::cerr << snapshot.status() << "\n";
        return 1;
      }
      ingest::EvidenceDelta delta =
          BuildDelta(snapshot.value(), i, static_cast<uint64_t>(phase));
      bench::WallTimer update_timer;
      api::Result<ingest::ApplyReport> applied =
          server->ApplyDelta(sessions[i], delta);
      phase_update_ms += update_timer.Seconds() * 1e3;
      if (!applied.ok()) {
        std::cerr << applied.status() << "\n";
        return 1;
      }
      ++updates;
    }
    update_ms_total += phase_update_ms;

    bench::WallTimer query_timer;
    serve::RequestStats phase_stats;
    if (!QueryPass(*server, sessions, k, &phase_stats, nullptr)) return 1;
    double query_s = query_timer.Seconds();
    mixed.Add(phase_stats);
    table.AddRow({std::to_string(phase), FormatDouble(batch_s, 3),
                  FormatDouble(phase_update_ms / sessions.size(), 3),
                  FormatDouble(query_s, 3),
                  FormatDouble(phase_stats.CacheHitRate(), 3)});

    // Mid-run checkpoint after the first phase: the final checkpoint
    // below supersedes it, leaving an older snapshot on disk the loader
    // must rank past — the retention path, not just the happy path.
    if (phase == 0) {
      api::Result<api::CheckpointReport> written = server->Checkpoint();
      if (!written.ok()) {
        std::cerr << written.status() << "\n";
        return 1;
      }
    }
  }
  table.Print(std::cout);

  // ---- Final checkpoint, then one more delta round *past* it. The
  // snapshot captures the cache fully warm (every phase ended with a
  // query pass); the extra deltas land beyond its covering LSN, so the
  // warm boot must replay a real WAL tail. Both the pre-kill reference
  // pass and the post-recovery pass then start from the same logical
  // state — checkpoint plus (re)applied deltas — which makes their hit
  // rates directly comparable.
  {
    api::Result<api::CheckpointReport> written = server->Checkpoint();
    if (!written.ok()) {
      std::cerr << written.status() << "\n";
      return 1;
    }
    checkpoint = written.value();
  }
  for (size_t i = 0; i < sessions.size(); ++i) {
    api::Result<QueryGraph> snapshot = server->SessionSnapshot(sessions[i]);
    if (!snapshot.ok()) {
      std::cerr << snapshot.status() << "\n";
      return 1;
    }
    ingest::EvidenceDelta delta =
        BuildDelta(snapshot.value(), i, static_cast<uint64_t>(phases));
    api::Result<ingest::ApplyReport> applied =
        server->ApplyDelta(sessions[i], delta);
    if (!applied.ok()) {
      std::cerr << applied.status() << "\n";
      return 1;
    }
    ++updates;
  }

  // ---- Pre-kill reference: the query pass recovery must reproduce,
  // and the hit rate the recovered server must match. ----
  serve::RequestStats before_stats;
  std::vector<std::vector<std::pair<NodeId, double>>> expected;
  if (!QueryPass(*server, sessions, k, &before_stats, &expected)) return 1;
  const double hit_rate_before = before_stats.CacheHitRate();
  api::ServerStats pre_kill = server->Stats();

  // A representative WAL payload (one encoded session delta) for the
  // append-path microbench below, captured while the server is alive.
  std::string wal_payload;
  {
    api::Result<QueryGraph> snapshot = server->SessionSnapshot(sessions[0]);
    if (!snapshot.ok()) {
      std::cerr << snapshot.status() << "\n";
      return 1;
    }
    storage::ByteWriter body;
    storage::EncodeDelta(BuildDelta(snapshot.value(), 0, 0), body);
    wal_payload = body.bytes();
  }

  // ---- Kill and warm-boot. The destructor syncs the WAL, matching a
  // clean shutdown; torn-tail handling is covered by storage_wal_test.
  server.reset();
  bench::WallTimer boot_timer;
  api::Server recovered(options);
  const double boot_s = boot_timer.Seconds();
  if (!recovered.storage_status().ok()) {
    std::cerr << "warm boot failed: " << recovered.storage_status() << "\n";
    return 1;
  }
  const storage::RecoveryReport& recovery = recovered.recovery_report();

  // Same handles, same rankings, bit for bit.
  serve::RequestStats after_stats;
  std::vector<std::vector<std::pair<NodeId, double>>> actual;
  if (!QueryPass(recovered, sessions, k, &after_stats, &actual)) return 1;
  const bool recovery_identical = actual == expected;
  const double hit_rate_after = after_stats.CacheHitRate();
  const bool hit_rate_preserved =
      std::abs(hit_rate_after - hit_rate_before) <= 0.05;

  // ---- WAL append-path microbench: the raw group-fsync append rate on
  // a representative encoded-delta body, fsync on (the serving config).
  double wal_appends_per_sec = 0.0;
  double wal_mb_per_sec = 0.0;
  {
    const std::string path = store + "/bench_append.wal";
    std::remove(path.c_str());
    Result<storage::Wal::OpenResult> opened =
        storage::Wal::Open(path, 0xB10BE7C4);
    if (!opened.ok()) {
      std::cerr << opened.status() << "\n";
      return 1;
    }
    const int appends = 2000;
    bench::WallTimer append_timer;
    for (int i = 0; i < appends; ++i) {
      if (!opened.value()
               .wal->Append(storage::WalRecordType::kApplyDelta, 1,
                            wal_payload)
               .ok()) {
        std::cerr << "wal append failed\n";
        return 1;
      }
    }
    if (!opened.value().wal->Sync().ok()) {
      std::cerr << "wal sync failed\n";
      return 1;
    }
    double seconds = append_timer.Seconds();
    storage::WalStats wal_stats = opened.value().wal->stats();
    wal_appends_per_sec = appends / seconds;
    wal_mb_per_sec = static_cast<double>(wal_stats.bytes) / seconds / 1e6;
    opened.value().wal.reset();
    std::remove(path.c_str());
  }

  const double checkpoint_mb_s =
      checkpoint.seconds > 0.0
          ? static_cast<double>(checkpoint.bytes) / checkpoint.seconds / 1e6
          : 0.0;
  std::cout << "\nCheckpoint: " << checkpoint.bytes << " bytes @ LSN "
            << checkpoint.wal_lsn << " in "
            << FormatDouble(checkpoint.seconds, 4) << " s ("
            << FormatDouble(checkpoint_mb_s, 1) << " MB/s), "
            << checkpoint.sessions << " sessions, "
            << checkpoint.cache_entries << " cache entries.\n"
            << "Warm boot: " << FormatDouble(boot_s, 4) << " s ("
            << recovery.sessions_recovered << " sessions, "
            << recovery.replayed_records << " WAL records replayed, "
            << recovery.cache_entries_restored << " cache entries).\n"
            << "Recovered rankings "
            << (recovery_identical ? "bit-identical" : "DIVERGED")
            << "; hit rate " << FormatDouble(hit_rate_before, 3) << " -> "
            << FormatDouble(hit_rate_after, 3)
            << (hit_rate_preserved ? " (preserved)" : " (REGRESSED)") << ".\n"
            << "WAL append path: "
            << FormatDouble(wal_appends_per_sec, 0) << " appends/s ("
            << FormatDouble(wal_mb_per_sec, 1) << " MB/s, group fsync).\n";

  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("k", k);
  report.SetMetric("phases", phases);
  report.SetMetric("sessions", static_cast<int64_t>(sessions.size()));
  report.SetMetric("deltas", static_cast<int64_t>(updates));
  report.SetMetric("update_ms_mean",
                   updates == 0 ? 0.0 : update_ms_total / updates);
  report.SetMetric("mixed_hit_rate", mixed.CacheHitRate());
  report.SetMetric("recovery_identical", recovery_identical);
  report.SetMetric("hit_rate_preserved", hit_rate_preserved);
  report.SetMetric("hit_rate_before_kill", hit_rate_before);
  report.SetMetric("hit_rate_after_recovery", hit_rate_after);
  report.SetMetric("checkpoint_bytes",
                   static_cast<int64_t>(checkpoint.bytes));
  report.SetMetric("checkpoint_seconds", checkpoint.seconds);
  report.SetMetric("checkpoint_mb_per_sec", checkpoint_mb_s);
  report.SetMetric("checkpoint_cache_entries",
                   static_cast<int64_t>(checkpoint.cache_entries));
  report.SetMetric("recovery_seconds", boot_s);
  report.SetMetric("replayed_records",
                   static_cast<int64_t>(recovery.replayed_records));
  report.SetMetric("skipped_records",
                   static_cast<int64_t>(recovery.skipped_records));
  report.SetMetric("cache_entries_restored",
                   static_cast<int64_t>(recovery.cache_entries_restored));
  report.SetMetric("wal_appends_per_sec", wal_appends_per_sec);
  report.SetMetric("wal_mb_per_sec", wal_mb_per_sec);
  report.SetMetric("wal_records",
                   static_cast<int64_t>(pre_kill.wal.records));
  report.SetMetric("wal_syncs", static_cast<int64_t>(pre_kill.wal.syncs));
  report.Write();

  if (!recovery_identical || !hit_rate_preserved) return 1;
  return 0;
}
