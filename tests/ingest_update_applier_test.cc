// The ingest layer's core contract: after any EvidenceDelta, the
// incrementally maintained RankTopK output is bit-identical to a
// from-scratch rebuild on the updated graph — at any thread count, cache
// on or off — while only the dirtied answers re-enter the
// bound/prune/resolve pipeline and only the orphaned canonical keys
// leave the reliability cache. Plus the concurrent query/update
// hammering that the TSan CI job runs.

#include "ingest/update_applier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/query_graph.h"
#include "integrate/mediator.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank::ingest {
namespace {

using biorank::testing::MakeRandomLayeredDag;
using biorank::testing::RandomDagOptions;

std::vector<std::pair<NodeId, double>> Flatten(
    const serve::TopKResult& result) {
  std::vector<std::pair<NodeId, double>> out;
  for (const serve::RankedCandidate& c : result.top) {
    out.emplace_back(c.node, c.reliability);
  }
  return out;
}

/// From-scratch reference: a fresh service (no shared cache state) ranks
/// a fresh copy of the updated graph.
std::vector<std::pair<NodeId, double>> Rebuild(
    const QueryGraph& graph, int k, bool enable_cache, int num_threads) {
  serve::RankingServiceOptions options;
  options.enable_cache = enable_cache;
  options.num_threads = num_threads;
  serve::RankingService service(options);
  Result<serve::TopKResult> result = service.RankTopK(graph, k);
  EXPECT_TRUE(result.ok()) << result.status();
  return Flatten(result.value());
}

/// A deterministic "evidence keeps arriving" delta: reweights a few
/// edges, removes one, and attaches one fresh evidence path.
EvidenceDelta MakeDelta(const QueryGraph& graph, uint64_t seed) {
  Rng rng(seed);
  EvidenceDelta delta;
  std::vector<EdgeId> edges = graph.graph.AliveEdges();
  for (int i = 0; i < 3 && !edges.empty(); ++i) {
    EdgeId e = edges[static_cast<size_t>(
        rng.NextBounded(edges.size()))];
    delta.reweight_edges.push_back({e, rng.NextUniform(0.2, 1.0)});
  }
  // Remove an edge that is not an answer's last support (keep the graph
  // interesting rather than empty): pick an edge out of the source when
  // the source has several, skipping edges this delta already reweights
  // (remove+reweight of one edge is rejected by validation).
  std::vector<EdgeId> out = graph.graph.OutEdges(graph.source);
  if (out.size() > 2) {
    EdgeId candidate =
        out[static_cast<size_t>(rng.NextBounded(out.size()))];
    bool reweighted = false;
    for (const EvidenceDelta::ReweightEdge& op : delta.reweight_edges) {
      if (op.edge == candidate) reweighted = true;
    }
    if (!reweighted) delta.remove_edges.push_back({candidate});
  }
  // Fresh annotation: a new node supported by the source, supporting a
  // random answer.
  if (!graph.answers.empty()) {
    delta.add_nodes.push_back({rng.NextUniform(0.5, 1.0), "fresh", ""});
    NodeId target = graph.answers[static_cast<size_t>(
        rng.NextBounded(graph.answers.size()))];
    delta.add_edges.push_back(
        {graph.source, EvidenceDelta::NewNodeRef(0),
         rng.NextUniform(0.3, 1.0)});
    delta.add_edges.push_back({EvidenceDelta::NewNodeRef(0), target,
                               rng.NextUniform(0.3, 1.0)});
  }
  return delta;
}

TEST(UpdateApplierTest, FirstRankMatchesPlainService) {
  Rng rng(5);
  RandomDagOptions options;
  options.answers = 6;
  QueryGraph g = MakeRandomLayeredDag(rng, options);
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  Result<serve::TopKResult> live = applier.RankTopK(4);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(Flatten(live.value()), Rebuild(g, 4, false, 1));
}

TEST(UpdateApplierTest, IncrementalMatchesRebuildAcrossDeltaSequence) {
  Rng rng(17);
  RandomDagOptions options;
  options.layers = 2;
  options.answers = 6;
  for (int round = 0; round < 3; ++round) {
    QueryGraph g = MakeRandomLayeredDag(rng, options);
    serve::RankingService service;
    UpdateApplier applier(g, &service);
    ASSERT_TRUE(applier.RankTopK(4).ok());
    for (uint64_t step = 0; step < 4; ++step) {
      EvidenceDelta delta =
          MakeDelta(applier.GraphSnapshot(), 100 * (round + 1) + step);
      Result<ApplyReport> report = applier.ApplyDelta(delta);
      ASSERT_TRUE(report.ok()) << report.status();
      Result<serve::TopKResult> live = applier.RankTopK(4);
      ASSERT_TRUE(live.ok()) << live.status();
      QueryGraph updated = applier.GraphSnapshot();
      // Bit-identical to every rebuild flavour: cache off/on, 1/4
      // threads.
      EXPECT_EQ(Flatten(live.value()), Rebuild(updated, 4, false, 1));
      EXPECT_EQ(Flatten(live.value()), Rebuild(updated, 4, true, 4));
    }
  }
}

TEST(UpdateApplierTest, CleanAnswersAreServedFromTheWarmCache) {
  // Answers with structurally distinct evidence paths so every answer
  // owns a distinct canonical key.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  std::vector<NodeId> answers;
  std::vector<EdgeId> spokes;
  for (int i = 0; i < 6; ++i) {
    NodeId t = b.Node(1.0);
    spokes.push_back(b.Edge(s, t, 0.30 + 0.1 * i));
    answers.push_back(t);
  }
  QueryGraph g = std::move(b).Build(answers);
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  ASSERT_TRUE(applier.RankTopK(6).ok());  // Warm pass resolves all keys.

  EvidenceDelta delta;
  delta.reweight_edges.push_back({spokes[2], 0.55});
  Result<ApplyReport> report = applier.ApplyDelta(delta);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().dirty_answers, 1);
  EXPECT_EQ(report.value().clean_answers, 5);
  EXPECT_EQ(report.value().stale_keys, 1u);
  EXPECT_EQ(report.value().invalidated_entries, 1u);

  Result<serve::TopKResult> after = applier.RankTopK(6);
  ASSERT_TRUE(after.ok());
  // Exactly the one dirtied answer misses; the five clean answers hit
  // their preserved entries.
  EXPECT_EQ(after.value().stats.cache_misses, 1);
  EXPECT_EQ(after.value().stats.cache_hits, 5);
  EXPECT_EQ(Flatten(after.value()),
            Rebuild(applier.GraphSnapshot(), 6, false, 1));
}

TEST(UpdateApplierTest, SharedKeysSurviveWhenOneSharerIsDirtied) {
  // Two isomorphic answers share one canonical key; dirtying one must
  // not evict the entry the other still uses.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId t1 = b.Node(1.0);
  NodeId t2 = b.Node(1.0);
  EdgeId e1 = b.Edge(s, t1, 0.5);
  b.Edge(s, t2, 0.5);
  QueryGraph g = std::move(b).Build({t1, t2});
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  ASSERT_TRUE(applier.RankTopK(2).ok());

  EvidenceDelta delta;
  delta.reweight_edges.push_back({e1, 0.6});
  Result<ApplyReport> report = applier.ApplyDelta(delta);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().dirty_answers, 1);
  EXPECT_EQ(report.value().stale_keys, 0u)
      << "the old key is still t2's key";
  EXPECT_EQ(report.value().invalidated_entries, 0u);
  EXPECT_EQ(Flatten(applier.RankTopK(2).value()),
            Rebuild(applier.GraphSnapshot(), 2, false, 1));
}

TEST(UpdateApplierTest, NoOpRevisionKeepsTheCacheEntry) {
  // A revision that leaves the graph bit-identical (p set to its current
  // value) dirties the answer — the index cannot know the value didn't
  // move — but the re-derived key is unchanged, so the cache entry must
  // survive and the next query must still hit.
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId m = b.Node(0.8);
  NodeId t = b.Node(1.0);
  b.Edge(s, m, 0.7);
  b.Edge(m, t, 0.6);
  QueryGraph g = std::move(b).Build({t});
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  ASSERT_TRUE(applier.RankTopK(1).ok());

  EvidenceDelta delta;
  delta.revise_node_probs.push_back({m, 0.8});  // Unchanged value.
  Result<ApplyReport> report = applier.ApplyDelta(delta);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().dirty_answers, 1);
  EXPECT_EQ(report.value().stale_keys, 0u)
      << "the re-derived key is identical, nothing is orphaned";
  EXPECT_EQ(report.value().invalidated_entries, 0u);
  Result<serve::TopKResult> after = applier.RankTopK(1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().stats.cache_misses, 0);
  EXPECT_GT(after.value().stats.cache_hits, 0);
}

TEST(UpdateApplierTest, AnswerSurvivesLosingAllItsEvidence) {
  QueryGraphBuilder b;
  NodeId s = b.Source();
  NodeId t1 = b.Node(1.0);
  NodeId t2 = b.Node(1.0);
  EdgeId e1 = b.Edge(s, t1, 0.8);
  b.Edge(s, t2, 0.5);
  QueryGraph g = std::move(b).Build({t1, t2});
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  EvidenceDelta delta;
  delta.remove_edges.push_back({e1});
  ASSERT_TRUE(applier.ApplyDelta(delta).ok());
  Result<serve::TopKResult> result = applier.RankTopK(2);
  ASSERT_TRUE(result.ok()) << result.status();
  // t1 is now unreachable: reliability 0, ranked last, still an answer.
  EXPECT_EQ(Flatten(result.value()),
            Rebuild(applier.GraphSnapshot(), 2, false, 1));
  bool saw_t1 = false;
  for (const serve::RankedCandidate& c : result.value().top) {
    if (c.node == t1) {
      saw_t1 = true;
      EXPECT_DOUBLE_EQ(c.reliability, 0.0);
    }
  }
  EXPECT_TRUE(saw_t1);
}

TEST(UpdateApplierTest, InvalidDeltaChangesNothing) {
  Rng rng(29);
  QueryGraph g = MakeRandomLayeredDag(rng, {});
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  std::vector<std::pair<NodeId, double>> before =
      Flatten(applier.RankTopK(3).value());
  EvidenceDelta bad;
  bad.revise_node_probs.push_back({9999, 0.5});
  EXPECT_FALSE(applier.ApplyDelta(bad).ok());
  EXPECT_EQ(Flatten(applier.RankTopK(3).value()), before);
}

TEST(UpdateApplierTest, MetricsValidationIsEnforcedWhenProvided) {
  Rng rng(31);
  QueryGraph g = MakeRandomLayeredDag(rng, {});
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  ProbabilisticMetrics metrics = MakeDefaultBioRankMetrics();
  EvidenceDelta delta;
  delta.revise_source_priors.push_back({"NoSuchSource", 0.5});
  EXPECT_TRUE(applier.ApplyDelta(delta).ok())
      << "no metrics, no schema check";
  EXPECT_EQ(applier.ApplyDelta(delta, &metrics).status().code(),
            StatusCode::kNotFound);
}

TEST(UpdateApplierTest, ConcurrentQueriesAndUpdatesStayCoherent) {
  Rng rng(41);
  RandomDagOptions options;
  options.layers = 2;
  options.answers = 5;
  QueryGraph g = MakeRandomLayeredDag(rng, options);
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  ASSERT_TRUE(applier.RankTopK(3).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        Result<serve::TopKResult> result = applier.RankTopK(3);
        // EXPECT (not ASSERT): a failing reader must keep counting
        // reads, or the main thread's wait-for-overlap would hang.
        EXPECT_TRUE(result.ok()) << result.status();
        if (result.ok()) {
          EXPECT_LE(result.value().top.size(), 3u);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (uint64_t step = 0; step < 8; ++step) {
    EvidenceDelta delta = MakeDelta(applier.GraphSnapshot(), 7000 + step);
    Result<ApplyReport> report = applier.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << report.status();
  }
  // On a loaded machine the writer can outrun the readers; keep the
  // readers running until at least one full ranking has raced an update
  // epoch, so the test always exercises reader/writer overlap.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0);
  // Quiesced: the final live ranking equals the rebuild.
  EXPECT_EQ(Flatten(applier.RankTopK(3).value()),
            Rebuild(applier.GraphSnapshot(), 3, false, 1));
}

TEST(UpdateApplierTest, MaintainedCsrSnapshotMatchesFromScratchBuild) {
  // The applier's incrementally maintained flat snapshot must be
  // byte-equal to a from-scratch BuildCsrSnapshot of the live graph at
  // construction and after every applied delta batch.
  Rng rng(23);
  RandomDagOptions options;
  options.answers = 5;
  QueryGraph g = MakeRandomLayeredDag(rng, options);
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  EXPECT_TRUE(CsrBytesEqual(applier.csr_snapshot(),
                            BuildCsrSnapshot(applier.GraphSnapshot().graph)));

  for (int step = 0; step < 8; ++step) {
    EvidenceDelta delta = MakeDelta(applier.GraphSnapshot(), 500 + step);
    Result<ApplyReport> report = applier.ApplyDelta(delta);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(
        CsrBytesEqual(applier.csr_snapshot(),
                      BuildCsrSnapshot(applier.GraphSnapshot().graph)))
        << "snapshot drifted from the live graph after delta " << step;
  }
}

TEST(UpdateApplierTest, RejectedDeltaLeavesCsrSnapshotUntouched) {
  Rng rng(29);
  RandomDagOptions options;
  options.answers = 4;
  QueryGraph g = MakeRandomLayeredDag(rng, options);
  serve::RankingService service;
  UpdateApplier applier(g, &service);
  CsrSnapshot before = applier.csr_snapshot();

  EvidenceDelta invalid;
  invalid.revise_node_probs.push_back({9999, 0.5});
  EXPECT_FALSE(applier.ApplyDelta(invalid).ok());
  EXPECT_TRUE(CsrBytesEqual(applier.csr_snapshot(), before));
  EXPECT_TRUE(CsrBytesEqual(applier.csr_snapshot(),
                            BuildCsrSnapshot(applier.GraphSnapshot().graph)));
}

}  // namespace
}  // namespace biorank::ingest
