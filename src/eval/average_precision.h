// Average precision and precision-at-i over a boolean relevance
// vector, the paper's primary ranking-quality metric.

#ifndef BIORANK_EVAL_AVERAGE_PRECISION_H_
#define BIORANK_EVAL_AVERAGE_PRECISION_H_

#include <vector>

#include "util/status.h"

namespace biorank {

/// Average precision of a strictly-ordered binary relevance list
/// (Section 4, "Measuring Ranking Performance"):
///   AP = (1/k) * sum_i P@i * rel_i
/// where k is the number of relevant items and P@i the precision at cut
/// i. Computed at 100% recall like the paper. Fails if the list contains
/// no relevant item (AP is undefined then).
Result<double> AveragePrecision(const std::vector<bool>& relevance);

/// Precision at cut `i` (1-based) of a binary relevance list.
Result<double> PrecisionAt(const std::vector<bool>& relevance, int i);

}  // namespace biorank

#endif  // BIORANK_EVAL_AVERAGE_PRECISION_H_
