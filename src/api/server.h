// The one public entry point of the biorank serving system (the paper's
// Section 2 / Figure 1 mediator as a *service*): api::Server owns the
// whole integration stack — protein universe, source registry, mediator,
// the shared RankingService (canonical reliability cache + thread pool)
// — plus a concurrent session registry for live queries. Callers speak
// typed value objects (api/query.h) and never assemble the stack by
// hand:
//
//   Query     — one-shot: materialize the graph, rank top-k through the
//               shared cache, return values + bounds + timing + counters.
//   RunBatch  — N independent requests fanned across the shared pool;
//               output bit-identical to running them serially (every
//               ranking is a pure function of the request, never of
//               interleaving, thread count, or cache state).
//   OpenSession / ApplyDelta / QuerySession / CloseSession — a live
//               query held resident behind a handle: evidence deltas
//               apply incrementally (ingest/), rankings stay
//               bit-identical to a from-scratch rebuild, and any number
//               of sessions share the one canonical reliability cache.
//   RankGraph — the serving facade for a caller-provided graph (benches,
//               rebuild references).
//
// Thread safety: every public method may be called concurrently. The
// registry is a mutex-guarded handle map holding shared_ptr sessions, so
// a CloseSession racing an in-flight QuerySession is safe (the applier
// dies with its last reference); per-session reader/writer coordination
// is the UpdateApplier's shared_mutex; the cache is sharded. Idle
// sessions are evicted by server-operation age (a deterministic op
// clock, not wall time), so eviction is testable and replayable.

#ifndef BIORANK_API_SERVER_H_
#define BIORANK_API_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/admission.h"
#include "api/query.h"
#include "core/ranking.h"
#include "datagen/protein_universe.h"
#include "ingest/delta.h"
#include "integrate/mediator.h"
#include "integrate/scenario_harness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/ranking_service.h"
#include "sources/source_registry.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace biorank::api {

/// The server's observability knobs (obs/). Metrics are always on —
/// handle-based recording is cheap enough to never gate — but tracing
/// is opt-in per request (QueryOptions::trace) or threshold-triggered
/// (slow_query_threshold_s).
struct ObservabilityOptions {
  /// Metrics registry to record into; null (the default) gives the
  /// server its own. Injected registries are shared with the caller:
  /// the server registers collectors that read server state, so do not
  /// snapshot the registry after the server is destroyed.
  std::shared_ptr<obs::Registry> registry;
  /// Requests whose end-to-end latency reaches this many seconds keep
  /// their full span tree in the slow-query ring buffer. <= 0 (the
  /// default) disables capture — and with it the per-request Trace
  /// allocation, keeping the always-on hot path metrics-only.
  double slow_query_threshold_s = 0.0;
  /// Ring-buffer capacity for captured slow-query traces.
  size_t slow_trace_capacity = 32;
};

/// Everything a server instance is built from. One options bundle, one
/// world: the universe seed determines the sources, the mediator metrics
/// determine every node/edge probability, and the ranking options
/// determine the shared service (canonical seed, cache capacity, pool).
struct ServerOptions {
  UniverseOptions universe;
  SourceRegistryOptions sources;
  MediatorOptions mediator;
  serve::RankingServiceOptions ranking;
  /// Offline scoring (the five relevance functions) used by the
  /// evaluation harness this server exposes via harness().
  RankerOptions ranker;
  /// Idle-session auto-eviction: on OpenSession, sessions untouched for
  /// more than this many server operations are closed first. 0 disables
  /// auto-eviction (EvictIdleSessions remains available).
  uint64_t session_idle_ops = 0;
  /// Deadline-ordered admission in front of Query/Refine (the SLO gate).
  /// The default (max_concurrent <= 0) admits everything immediately.
  AdmissionOptions admission;
  /// Metrics registry + slow-query tracing (obs/).
  ObservabilityOptions obs;
  /// Durability (storage/): when non-empty, the server boots warm from
  /// this directory (newest valid snapshot, then WAL replay past it),
  /// logs every session open/close and evidence delta to the WAL before
  /// applying it, and serves Checkpoint(). Empty (the default) keeps the
  /// server memory-only. A boot failure never aborts construction: the
  /// server comes up memory-only and storage_status() carries the error.
  std::string storage_dir;
  /// Group-fsync knobs for the WAL (ignored without storage_dir). The
  /// registry field is filled with the server's own registry when left
  /// null.
  storage::WalOptions wal;
};

/// Monotonic service counters plus a point-in-time cache snapshot.
/// Since the obs migration this is a snapshot *view*: the counters live
/// in the server's metrics registry (biorank_api_*_total) and Stats()
/// reads them back, so the struct and MetricsText() can never disagree.
struct ServerStats {
  uint64_t queries = 0;          ///< Query requests served OK (batched included).
  uint64_t batches = 0;          ///< RunBatch calls.
  uint64_t batch_requests = 0;   ///< Requests served inside batches.
  uint64_t graph_rankings = 0;   ///< RankGraph calls served OK.
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;  ///< Explicit CloseSession calls.
  uint64_t sessions_evicted = 0; ///< Idle-eviction closures.
  uint64_t session_queries = 0;  ///< QuerySession requests served OK.
  uint64_t deltas_applied = 0;
  uint64_t open_sessions = 0;    ///< Currently live sessions.
  uint64_t refinements_started = 0;   ///< Anytime responses that left a handle.
  uint64_t refinements_completed = 0; ///< Handles refined to completion.
  uint64_t refinements_cancelled = 0; ///< CancelRefinement calls that took.
  uint64_t open_refinements = 0;      ///< Currently live handles.
  serve::CacheStats cache;       ///< Shared reliability cache snapshot.
  AdmissionStats admission;      ///< Queue depth/age gauges + counters.
  bool durable = false;          ///< Whether a WAL is attached.
  uint64_t checkpoints = 0;      ///< Checkpoint() calls that completed.
  storage::WalStats wal;         ///< Append-side WAL counters (if durable).
  storage::RecoveryReport recovery;  ///< What the warm boot did (if any).
};

/// What one Server::Checkpoint() wrote.
struct CheckpointReport {
  uint64_t wal_lsn = 0;      ///< Covering LSN stamped into the snapshot.
  std::string path;          ///< Snapshot file written.
  uint64_t bytes = 0;        ///< Encoded snapshot size.
  size_t sessions = 0;       ///< Live sessions captured.
  size_t cache_entries = 0;  ///< Resolved cache entries captured.
  double seconds = 0.0;      ///< Wall time, capture through rename.
};

/// The front door. Construction generates the synthetic world and wires
/// the full stack; one instance is one deployment, shared by any number
/// of client threads.
class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Syncs the WAL (best-effort) before tearing the stack down, so a
  /// clean shutdown never leaves an un-synced suffix for the next boot
  /// to treat as a torn tail.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one typed request end to end: admission (deadline-ordered
  /// when the server caps concurrency), mediator crawl, then (unless
  /// options.rank is false or the answer set is empty) a ranking pass
  /// through the shared service — or through a request-private service
  /// when the request pins a foreign MC seed. kBlocking resolves every
  /// survivor before returning; kAnytime returns the bounds-only ranking
  /// plus whatever refinement the deadline/budget allowed, carrying a
  /// RefinementHandle when answers are still open. A request whose
  /// deadline passes while queued gets kDeadlineExceeded and no partial
  /// answer.
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Advances a live anytime refinement by one increment (per-survivor
  /// `options.mc_trial_budget` MC trials; <= 0 refines to convergence or
  /// `options` deadline). The response carries the updated ranking,
  /// cumulative stats, and completeness; when the ranking is final the
  /// handle is retired (response.refinement.id == 0) and the result is
  /// bit-identical to the blocking answer. Errors: NotFound (unknown or
  /// already-finished handle), kCancelled (handle cancelled),
  /// kDeadlineExceeded (deadline passed in the admission queue).
  /// Refinement is deterministic: state advances by whole shards of the
  /// per-candidate trial schedule, so any increment sequence converges
  /// to the same values. Concurrent Refine calls on one handle serialize.
  Result<QueryResponse> Refine(RefinementHandle handle,
                               const QueryOptions& options = {});

  /// Cancels a live refinement: the handle's state is dropped and every
  /// later Refine on it fails with kCancelled. NotFound for handles that
  /// never existed or already finished; cancelling twice is OK.
  Status CancelRefinement(RefinementHandle handle);

  /// Fans `batch` (independent requests) across the shared pool and
  /// returns one response per request, in request order. Output is
  /// bit-identical to calling Query serially at any thread count; on any
  /// request failure the first (lowest-index) error is returned.
  Result<std::vector<QueryResponse>> RunBatch(
      const std::vector<QueryRequest>& batch);

  /// Ranks a caller-provided query graph through the shared service —
  /// the facade for pre-materialized or synthetic graphs. The response's
  /// `result` is empty (the caller holds the graph).
  Result<QueryResponse> RankGraph(const QueryGraph& graph, int top_k);

  /// Ranks only `answers` — a distinct subset of `graph.answers` — and
  /// returns its top `top_k`. This is the shard-serving entry point: a
  /// shard::ShardRouter partitions a query's answer set across N servers
  /// and each shard ranks exactly the slice it owns, with values
  /// bit-identical to the same answers inside an unsharded request
  /// (every resolved value is a pure function of the candidate's
  /// canonical key and the server's MC seed).
  Result<QueryResponse> RankGraph(const QueryGraph& graph,
                                  const std::vector<NodeId>& answers,
                                  int top_k);

  /// The full-options form of RankGraph: the same admission gate and
  /// blocking/anytime dispatch as Query, minus the mediator crawl. An
  /// anytime call leaves a RefinementHandle exactly like an anytime
  /// Query; the refinement state owns its canonicalizations, so the
  /// caller's graph need not outlive the handle. The plain int-top_k
  /// overloads above forward here with default (blocking, no-deadline)
  /// options.
  Result<QueryResponse> RankGraph(const QueryGraph& graph,
                                  const QueryOptions& options);

  /// Same, restricted to the `answers` subset (the shard slice).
  Result<QueryResponse> RankGraph(const QueryGraph& graph,
                                  const std::vector<NodeId>& answers,
                                  const QueryOptions& options);

  /// Stands `request.query` up as a live session: the materialized graph
  /// stays resident, evidence deltas apply incrementally, and queries
  /// ride the per-answer canonicals. `request.options.top_k` and `.mode`
  /// are ignored (k is per QuerySession call; sessions always serve
  /// blocking) and a foreign `options.seed` — nonzero and different from
  /// the server's canonical seed — is rejected: sessions share the
  /// canonical cache, which is only valid under that seed.
  Result<SessionInfo> OpenSession(const QueryRequest& request);

  /// Ranks a live session's answer set (top_k <= 0 ranks all). The
  /// response carries labeled answers and matched_proteins but no graph
  /// copy (see SessionSnapshot) and no go_node map (OpenSession's
  /// SessionInfo delivered it once; it is fixed for the session).
  Result<QueryResponse> QuerySession(SessionId id, int top_k = 0);

  /// Validates (graph + schema metrics) and applies one evidence delta
  /// to a live session; exactly the orphaned cache keys are invalidated
  /// and exactly the dirtied answers re-canonicalized.
  Result<ingest::ApplyReport> ApplyDelta(SessionId id,
                                         const ingest::EvidenceDelta& delta);

  /// Copy of a session's live graph (the from-scratch rebuild reference
  /// in tests/benches, and the base for building structural deltas).
  Result<QueryGraph> SessionSnapshot(SessionId id);

  /// Closes a session; its handle is never reused. In-flight requests
  /// holding the session finish safely. NotFound for stale handles.
  Status CloseSession(SessionId id);

  /// Closes every session idle for more than `min_idle_ops` server
  /// operations; returns how many were evicted.
  size_t EvictIdleSessions(uint64_t min_idle_ops);

  size_t session_count() const;
  size_t refinement_count() const;

  /// Writes one versioned snapshot of the whole durable state (every
  /// live session's frozen graph + CSR, the resolved cache entries, the
  /// covering WAL LSN) to the storage directory. Readers are never
  /// blocked: each session is frozen under its applier's *shared* lock,
  /// and the session registry lock is held only long enough to capture
  /// the LSN and the session pointers. kFailedPrecondition when the
  /// server has no storage attached (or its boot failed).
  Result<CheckpointReport> Checkpoint();

  /// OK when the server is durable (or memory-only by configuration);
  /// the boot error when ServerOptions::storage_dir was set but the
  /// warm boot failed and the server fell back to memory-only.
  const Status& storage_status() const { return storage_status_; }

  /// Whether a WAL is attached (storage booted OK).
  bool durable() const { return wal_ != nullptr; }

  /// What the warm boot did (zeroes for memory-only servers).
  const storage::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  ServerStats Stats() const;

  /// Point-in-time metrics: the server's registry snapshot rendered in
  /// Prometheus text exposition format / as one JSON object. Spans
  /// api (request counters, phase latency histograms), serve
  /// (scheduler counters, bounds/MC histograms, cache), ingest (delta
  /// counters, apply latency), and — when a shard::ShardRouter records
  /// into this server's registry — the shard layer.
  std::string MetricsText() const;
  std::string MetricsJson() const;
  obs::Snapshot MetricsSnapshot() const;

  /// The server's metrics registry (shard routers and benches record
  /// into or read from it). Lives as long as the server.
  obs::Registry& registry() const { return *obs_registry_; }

  /// Captured slow-query traces (empty unless
  /// ObservabilityOptions::slow_query_threshold_s is set).
  const obs::SlowQueryLog& slow_queries() const { return slow_log_; }

  const ProteinUniverse& universe() const { return universe_; }
  const SourceRegistry& sources() const { return registry_; }
  const Mediator& mediator() const { return mediator_; }
  /// The evaluation harness over this server's world (scenario queries,
  /// AP scoring, perturbation/MC repetition loops). Borrowed; lives as
  /// long as the server.
  const ScenarioHarness& harness() const { return harness_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Session {
    Mediator::LiveExploratoryQuery live;
    /// Op-clock value of the last operation that touched this session.
    std::atomic<uint64_t> last_touch{0};
  };

  /// One server-resident anytime refinement. The state owns its
  /// canonicalizations (self-contained reduced residues), so the
  /// original query graph does not stay resident; labels are captured
  /// once at Query time. `private_service` is set when the request
  /// pinned a foreign MC seed (refinement must keep resolving under
  /// that seed, never through the shared cache).
  struct Refinement {
    std::mutex mu;  ///< Serializes Refine increments on this handle.
    serve::RefinementState state;
    std::unordered_map<NodeId, std::string> labels;
    std::unique_ptr<serve::RankingService> private_service;
  };

  /// Bumps the op clock (every public operation is one tick).
  uint64_t Tick() { return op_clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Handle lookup; touches the session's idle clock on success.
  Result<std::shared_ptr<Session>> FindSession(SessionId id, uint64_t now);

  /// Ranks the `answers` subset of `graph` on `service` (k <= 0 ranks
  /// all) and appends labeled answers + stats to `response`.
  Status RankAnswerSubset(const QueryGraph& graph,
                          const std::vector<NodeId>& answers, int top_k,
                          serve::RankingService& service,
                          QueryResponse& response);

  /// Evicts sessions idle for more than `min_idle_ops` at clock `now`.
  size_t EvictIdleLocked(uint64_t min_idle_ops, uint64_t now);

  /// The ranking-mode dispatch shared by Query and the options-taking
  /// RankGraph: blocking vs anytime, foreign-seed private service, and
  /// refinement-handle registration. Fills the ranking half of
  /// `response`; the caller already holds an admission ticket and owns
  /// the timing/counter bookkeeping.
  Status RankWithOptions(const QueryGraph& graph,
                         const std::vector<NodeId>& answers,
                         const QueryOptions& options,
                         std::chrono::steady_clock::time_point deadline,
                         QueryResponse& response);

  /// Runs the refinement loop for one Query/Refine call under the
  /// caller's deadline/budget and fills the ranking/stats/completeness
  /// half of `response`. Caller holds `refinement->mu`.
  Status AdvanceRefinement(Refinement& refinement,
                           const QueryOptions& options,
                           std::chrono::steady_clock::time_point deadline,
                           QueryResponse& response);

  /// The trace an entry point serves under: the caller's (options.trace)
  /// when set, a server-owned one when slow-query capture is armed,
  /// null otherwise.
  struct TraceHolder {
    std::unique_ptr<obs::Trace> owned;
    obs::Trace* trace = nullptr;
  };
  TraceHolder StartTrace(obs::Trace* caller_trace);

  /// Resolves the registry handles (constructor) and registers the
  /// gauge collectors for sessions/refinements/cache/admission.
  void InitMetrics();

  /// FNV-style hash over every option that determines ranking values
  /// (universe shape + seed, mediator sources, MC seed + trial plan).
  /// Stamped into the WAL header and every snapshot; a mismatch on boot
  /// means the directory belongs to a differently-configured server and
  /// replaying it would silently change results.
  uint64_t StorageFingerprint() const;

  /// The warm boot: newest valid snapshot -> session reconstruction ->
  /// cache restore -> WAL open (torn-tail truncation) -> replay past
  /// the snapshot -> attach the WAL to every live applier. Runs in the
  /// constructor, before any concurrent caller exists, so it touches
  /// sessions_ without the registry lock.
  Status BootStorage();

  /// Appends a session-lifecycle record; requires sessions_mu_ (the
  /// checkpoint's LSN capture takes the same lock, so the captured LSN
  /// cleanly partitions open/close records into before/after).
  Result<uint64_t> LogSessionEventLocked(storage::WalRecordType type,
                                         SessionId id,
                                         const std::string& body);

  /// Records one finished request's phases into the shared latency
  /// histograms — every entry point (Query, RankGraph, QuerySession,
  /// Refine) stamps through here, so the histograms cover them all.
  void RecordPhases(const PhaseTiming& timing);

  /// Offers a finished trace to the slow-query ring buffer.
  void MaybeCaptureSlow(const char* entry_point, const obs::Trace* trace,
                        double total_s);

  /// Per-server registry-backed counters/histograms (see InitMetrics
  /// for names). Raw handles: the registry owns the metrics and lives
  /// as long as the server.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batch_requests = nullptr;
    obs::Counter* graph_rankings = nullptr;
    obs::Counter* sessions_opened = nullptr;
    obs::Counter* sessions_closed = nullptr;
    obs::Counter* sessions_evicted = nullptr;
    obs::Counter* session_queries = nullptr;
    obs::Counter* deltas_applied = nullptr;
    obs::Counter* delta_ops = nullptr;
    obs::Counter* dirty_answers = nullptr;
    obs::Counter* invalidated_entries = nullptr;
    obs::Counter* refinements_started = nullptr;
    obs::Counter* refinements_completed = nullptr;
    obs::Counter* refinements_cancelled = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* replayed_records = nullptr;
    obs::Histogram* snapshot_write_seconds = nullptr;
    obs::Histogram* recovery_seconds = nullptr;
    obs::Histogram* query_seconds = nullptr;
    obs::Histogram* queue_seconds = nullptr;
    obs::Histogram* integrate_seconds = nullptr;
    obs::Histogram* rank_seconds = nullptr;
    obs::Histogram* refine_seconds = nullptr;
    obs::Histogram* apply_seconds = nullptr;
  };

  ServerOptions options_;
  /// Declared before service_ so the ranking options can carry the
  /// registry pointer into the service's constructor. `registry_` was
  /// already taken (the SourceRegistry), hence the obs_ prefix.
  std::shared_ptr<obs::Registry> obs_registry_;
  ProteinUniverse universe_;
  SourceRegistry registry_;
  Mediator mediator_;
  serve::RankingService service_;
  ScenarioHarness harness_;

  AdmissionQueue admission_;
  obs::SlowQueryLog slow_log_;
  Metrics metrics_;

  /// Durability (null/empty for memory-only servers). wal_ is created by
  /// BootStorage and never reassigned afterwards, so readers may test it
  /// without a lock; Append serializes internally.
  std::unique_ptr<storage::Wal> wal_;
  Status storage_status_;
  storage::RecoveryReport recovery_report_;
  std::atomic<uint64_t> checkpoints_{0};

  std::atomic<uint64_t> op_clock_{0};
  std::atomic<uint64_t> next_session_id_{1};
  mutable std::mutex sessions_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;

  std::atomic<uint64_t> next_refinement_id_{1};
  mutable std::mutex refinements_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Refinement>> refinements_;
  /// Ids cancelled while (or after) being live: Refine on these answers
  /// kCancelled, never NotFound, so callers can tell the two apart.
  std::unordered_set<uint64_t> cancelled_refinements_;

  std::atomic<uint64_t> next_trace_id_{1};
};

}  // namespace biorank::api

#endif  // BIORANK_API_SERVER_H_
