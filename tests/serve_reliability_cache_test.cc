// The sharded LRU reliability cache: hit/miss accounting, in-place
// upgrade of bounds-only entries, LRU eviction under a tiny capacity,
// and — because this is the first mutable state shared across pool
// threads — a concurrent hammering test meant to run under
// ThreadSanitizer (CI's tsan job).

#include "serve/reliability_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "util/parallel.h"

namespace biorank::serve {
namespace {

CanonicalKey Key(const std::string& repr) {
  CanonicalKey key;
  key.repr = repr;
  key.hash = Fnv1a64(repr);
  return key;
}

CacheEntry Value(double v) {
  CacheEntry entry;
  entry.lower = v;
  entry.upper = v;
  entry.has_value = true;
  entry.value = v;
  entry.exact = true;
  return entry;
}

TEST(ReliabilityCacheTest, MissThenHit) {
  ReliabilityCache cache;
  EXPECT_FALSE(cache.Get(Key("a")).has_value());
  cache.Put(Key("a"), Value(0.25));
  std::optional<CacheEntry> got = cache.Get(Key("a"));
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(got->value, 0.25);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ReliabilityCacheTest, BoundsEntryUpgradesInPlace) {
  ReliabilityCache cache;
  CacheEntry bounds;
  bounds.lower = 0.1;
  bounds.upper = 0.9;
  cache.Put(Key("k"), bounds);
  ASSERT_FALSE(cache.Get(Key("k"))->has_value);
  CacheEntry resolved = bounds;
  resolved.has_value = true;
  resolved.value = 0.4;
  resolved.trials = 7896;
  cache.Put(Key("k"), resolved);
  std::optional<CacheEntry> got = cache.Get(Key("k"));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->has_value);
  EXPECT_DOUBLE_EQ(got->value, 0.4);
  EXPECT_EQ(got->trials, 7896);
  EXPECT_EQ(cache.Stats().entries, 1u);  // Upgrade, not a second entry.
}

TEST(ReliabilityCacheTest, LruEvictionUnderTinyCapacity) {
  ReliabilityCacheOptions options;
  options.capacity = 2;
  options.shards = 1;  // One shard so the LRU order is global.
  ReliabilityCache cache(options);
  cache.Put(Key("a"), Value(0.1));
  cache.Put(Key("b"), Value(0.2));
  ASSERT_TRUE(cache.Get(Key("a")).has_value());  // "a" is now most recent.
  cache.Put(Key("c"), Value(0.3));               // Evicts LRU tail "b".
  EXPECT_TRUE(cache.Get(Key("a")).has_value());
  EXPECT_FALSE(cache.Get(Key("b")).has_value());
  EXPECT_TRUE(cache.Get(Key("c")).has_value());
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ReliabilityCacheTest, ShardCountClampedToCapacity) {
  ReliabilityCacheOptions options;
  options.capacity = 3;
  options.shards = 64;
  ReliabilityCache cache(options);
  EXPECT_EQ(cache.options().shards, 3);
  for (int i = 0; i < 100; ++i) {
    cache.Put(Key("k" + std::to_string(i)), Value(0.5));
  }
  // Per-shard capacity is 1, so at most `shards` entries survive.
  EXPECT_LE(cache.Stats().entries, 3u);
}

TEST(ReliabilityCacheTest, ClearDropsEntriesKeepsCounters) {
  ReliabilityCache cache;
  cache.Put(Key("a"), Value(0.1));
  ASSERT_TRUE(cache.Get(Key("a")).has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get(Key("a")).has_value());
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ReliabilityCacheTest, EraseDropsOneEntryAndCounts) {
  ReliabilityCache cache;
  cache.Put(Key("a"), Value(0.1));
  cache.Put(Key("b"), Value(0.2));
  EXPECT_TRUE(cache.Erase(Key("a")));
  EXPECT_FALSE(cache.Erase(Key("a"))) << "second erase finds nothing";
  EXPECT_FALSE(cache.Erase(Key("never-inserted")));
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  // Erase is bookkeeping, not a lookup: no hit/miss accounting.
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_FALSE(cache.Get(Key("a")).has_value());
  EXPECT_TRUE(cache.Get(Key("b")).has_value());
}

TEST(ReliabilityCacheTest, InvalidateKeysReportsOnlyLiveDrops) {
  ReliabilityCache cache;
  cache.Put(Key("a"), Value(0.1));
  cache.Put(Key("b"), Value(0.2));
  cache.Put(Key("c"), Value(0.3));
  EXPECT_EQ(cache.InvalidateKeys({Key("a"), Key("c"), Key("ghost")}), 2u);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_TRUE(cache.Get(Key("b")).has_value());
}

TEST(ReliabilityCacheTest, ClearCountsDroppedEntriesAsInvalidations) {
  ReliabilityCache cache;
  cache.Put(Key("a"), Value(0.1));
  cache.Put(Key("b"), Value(0.2));
  cache.Clear();
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_EQ(stats.insertions, 2u);
}

TEST(ReliabilityCacheTest, StatsSnapshotBalancesAcrossShards) {
  // insertions - evictions - invalidations == entries must hold in any
  // Stats() snapshot; with the all-shard lock it holds even while other
  // threads mutate (checked concurrently below).
  ReliabilityCacheOptions options;
  options.capacity = 16;
  options.shards = 4;
  ReliabilityCache cache(options);
  for (int i = 0; i < 100; ++i) {
    cache.Put(Key("k" + std::to_string(i)), Value(0.5));
    if (i % 3 == 0) cache.Erase(Key("k" + std::to_string(i / 2)));
    if (i == 50) cache.Clear();
  }
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions - stats.evictions - stats.invalidations,
            stats.entries);
}

TEST(ReliabilityCacheTest, ConcurrentEvictionEraseAndClearAreRaceFree) {
  // The satellite concurrency test: every pool thread mixes puts, gets,
  // erases, batch invalidations, clears, and Stats() snapshots on a
  // cache small enough to evict constantly. Run under TSan in CI; the
  // inline assertion is the snapshot balance invariant, which the
  // all-shard Stats() lock must keep true at any instant.
  ReliabilityCacheOptions options;
  options.capacity = 24;
  options.shards = 4;
  ReliabilityCache cache(options);
  ThreadPool pool(3);
  constexpr int kShards = 48;
  constexpr int kOpsPerShard = 150;
  pool.ParallelFor(kShards, [&](int, int64_t shard) {
    for (int op = 0; op < kOpsPerShard; ++op) {
      int key_index = (static_cast<int>(shard) * 11 + op) % 64;
      CanonicalKey key = Key("k" + std::to_string(key_index));
      switch ((static_cast<int>(shard) + op) % 5) {
        case 0:
          cache.Put(key, Value(key_index / 100.0));
          break;
        case 1:
          cache.Get(key);
          break;
        case 2:
          cache.Erase(key);
          break;
        case 3:
          cache.InvalidateKeys(
              {key, Key("k" + std::to_string((key_index + 1) % 64))});
          break;
        default: {
          if (op % 50 == 0) cache.Clear();
          CacheStats stats = cache.Stats();
          EXPECT_EQ(
              stats.insertions - stats.evictions - stats.invalidations,
              stats.entries);
          break;
        }
      }
    }
  });
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions - stats.evictions - stats.invalidations,
            stats.entries);
  EXPECT_LE(stats.entries, 24u);
}

TEST(ReliabilityCacheTest, ConcurrentMixedGetsAndPutsAreRaceFree) {
  // Hammer a small cache from every pool thread with overlapping keys so
  // shards see concurrent hits, inserts, upgrades, and evictions. The
  // assertions are deliberately weak — the point is that TSan observes
  // the interleavings.
  ReliabilityCacheOptions options;
  options.capacity = 32;
  options.shards = 4;
  ReliabilityCache cache(options);
  ThreadPool pool(3);
  constexpr int kShards = 64;
  constexpr int kOpsPerShard = 200;
  pool.ParallelFor(kShards, [&](int, int64_t shard) {
    for (int op = 0; op < kOpsPerShard; ++op) {
      int key_index = (static_cast<int>(shard) * 7 + op) % 48;
      CanonicalKey key = Key("k" + std::to_string(key_index));
      std::optional<CacheEntry> got = cache.Get(key);
      if (got.has_value() && got->has_value) {
        // Cached values are immutable once resolved.
        EXPECT_DOUBLE_EQ(got->value, key_index / 100.0);
      } else {
        cache.Put(key, Value(key_index / 100.0));
      }
    }
  });
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kShards) * kOpsPerShard);
  EXPECT_LE(stats.entries, 32u);
}

}  // namespace
}  // namespace biorank::serve
