// Typed batches of evidence updates against a live query graph. The
// paper's mediator integrates evidence that arrives continuously (fresh
// BLAST runs, revised GO annotations, new Pfam releases); an
// EvidenceDelta is the unit in which such arrivals hit a served graph:
// add/remove evidence edges, re-weight edge probabilities, revise node
// presence probabilities, or revise a whole source's reliability prior.
// Validation happens against the graph (ids, probability ranges) and
// optionally against the schema layer's ProbabilisticMetrics (revised
// source priors must name registered entity sets).

#ifndef BIORANK_INGEST_DELTA_H_
#define BIORANK_INGEST_DELTA_H_

#include <string>
#include <vector>

#include "core/query_graph.h"
#include "schema/metrics.h"
#include "util/status.h"

namespace biorank::ingest {

/// One batch of evidence updates. Ops are applied in a fixed group order
/// — add_nodes, add_edges, remove_edges, reweight_edges,
/// revise_node_probs, revise_source_priors, each group in declaration
/// order — so applying a delta is deterministic and two replicas that
/// apply the same deltas hold bit-identical graphs.
struct EvidenceDelta {
  /// A fresh evidence tuple (e.g. a new annotation record). New nodes are
  /// referenced by later add_edges ops via NewNodeRef().
  struct AddNode {
    double p = 1.0;
    std::string label;
    std::string entity_set;
  };
  /// A fresh evidence link. Endpoints are live node ids or NewNodeRef()s.
  struct AddEdge {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double q = 1.0;
  };
  /// Retraction of an evidence link (e.g. a withdrawn BLAST hit).
  struct RemoveEdge {
    EdgeId edge = -1;
  };
  /// Revision of a link's presence probability (e.g. a re-run BLAST
  /// e-value).
  struct ReweightEdge {
    EdgeId edge = -1;
    double q = 1.0;
  };
  /// Revision of a tuple's presence probability (e.g. an annotation
  /// status upgrade).
  struct ReviseNodeProb {
    NodeId node = kInvalidNode;
    double p = 1.0;
  };
  /// Revision of a source's set-level reliability prior: every alive
  /// node of `entity_set` has its p multiplied by `ratio` (the new prior
  /// over the old one), clamped to [0,1]. This is the Section 2 ps knob
  /// turned after deployment — e.g. a Pfam release downgrade.
  struct ReviseSourcePrior {
    std::string entity_set;
    double ratio = 1.0;
  };

  std::vector<AddNode> add_nodes;
  std::vector<AddEdge> add_edges;
  std::vector<RemoveEdge> remove_edges;
  std::vector<ReweightEdge> reweight_edges;
  std::vector<ReviseNodeProb> revise_node_probs;
  std::vector<ReviseSourcePrior> revise_source_priors;

  /// Placeholder id for the `index`-th add_nodes op of this delta, usable
  /// as an AddEdge endpoint. Encoded below kInvalidNode so it can never
  /// collide with a real node id.
  static constexpr NodeId NewNodeRef(int index) {
    return static_cast<NodeId>(-2 - index);
  }
  /// Inverse of NewNodeRef: the add_nodes index, or -1 for a real id.
  static constexpr int NewNodeIndex(NodeId ref) {
    return ref <= -2 ? static_cast<int>(-2 - ref) : -1;
  }

  bool empty() const {
    return add_nodes.empty() && add_edges.empty() && remove_edges.empty() &&
           reweight_edges.empty() && revise_node_probs.empty() &&
           revise_source_priors.empty();
  }
  /// Total op count across all groups.
  int size() const {
    return static_cast<int>(add_nodes.size() + add_edges.size() +
                            remove_edges.size() + reweight_edges.size() +
                            revise_node_probs.size() +
                            revise_source_priors.size());
  }
};

/// Structural validation against the live graph: probabilities in [0,1],
/// ratios >= 0, edge ids alive, node ids alive (or in-delta NewNodeRefs
/// within range), and no op may touch the synthetic query source node
/// (its presence is the mediator's invariant, not evidence).
Status ValidateDelta(const EvidenceDelta& delta, const QueryGraph& graph);

/// The schema-layer checks alone (no structural pass): every revised
/// source prior must name an entity set with a registered set-level
/// confidence, and every added node's entity set (when non-empty)
/// likewise. Callers that go on to ApplyDeltaToGraph (which runs the
/// structural pass itself) use this to avoid validating twice.
Status ValidateDeltaSchema(const EvidenceDelta& delta,
                           const ProbabilisticMetrics& metrics);

/// ValidateDelta plus ValidateDeltaSchema.
Status ValidateDelta(const EvidenceDelta& delta, const QueryGraph& graph,
                     const ProbabilisticMetrics& metrics);

/// Ids materialized by ApplyDeltaToGraph, aligned with the delta's
/// add_nodes / add_edges ops.
struct AppliedDelta {
  std::vector<NodeId> new_nodes;  ///< new_nodes[i] = id of add_nodes[i].
  std::vector<EdgeId> new_edges;  ///< new_edges[i] = id of add_edges[i].
};

/// Validates `delta` against `graph` and applies it in the fixed group
/// order. On error the graph is untouched (validation is up-front; the
/// mutation loop cannot fail). Both the incremental applier and the
/// from-scratch rebuild references in tests/benches go through this one
/// function, so "the updated graph" means the same graph everywhere.
Result<AppliedDelta> ApplyDeltaToGraph(const EvidenceDelta& delta,
                                       QueryGraph& graph);

}  // namespace biorank::ingest

#endif  // BIORANK_INGEST_DELTA_H_
