// Reproduces Table 1: the scenario-1 reference proteins with the size of
// their curated (iProClass-like) gold standard, the size of BioRank's
// answer set, and the ratio. The paper's 20 proteins have 7-35 curated
// functions, 15-130 returned functions, and ratios of 13-63% (sum row:
// 306 / 1036 = 37%).

#include <iostream>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "=== Table 1: scenario 1 reference proteins ===\n\n";

  bench::WallTimer total_timer;
  bench::JsonReport report("table1_scenario1");
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  TextTable table(
      {"Protein", "# gold functions", "# BioRank functions", "%"});
  CsvWriter csv({"protein", "gold", "biorank", "percent"});
  int sum_gold = 0, sum_answers = 0;
  for (const ScenarioQuery& query : queries.value()) {
    int percent = query.answer_count > 0
                      ? (100 * query.gold_retrieved) / query.answer_count
                      : 0;
    sum_gold += query.gold_retrieved;
    sum_answers += query.answer_count;
    std::vector<std::string> cells = {
        query.spec.gene_symbol, std::to_string(query.gold_retrieved),
        std::to_string(query.answer_count), std::to_string(percent) + "%"};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"protein", query.spec.gene_symbol},
                   {"gold", query.gold_retrieved},
                   {"biorank", query.answer_count},
                   {"percent", percent}});
  }
  table.AddSeparator();
  int sum_percent = sum_answers > 0 ? (100 * sum_gold) / sum_answers : 0;
  table.AddRow({"Sum", std::to_string(sum_gold), std::to_string(sum_answers),
                std::to_string(sum_percent) + "%"});
  table.Print(std::cout);
  std::cout << "\nPaper: 20 proteins, gold 7-35 each (sum 306), answers "
               "15-130 (sum 1036), ratio 37%.\n";
  bench::MaybeWriteCsv(csv, "table1_scenario1");
  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("sum_gold", sum_gold);
  report.SetMetric("sum_answers", sum_answers);
  return report.Write().ok() ? 0 : 1;
}
