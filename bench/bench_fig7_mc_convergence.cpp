// Reproduces Figure 7: speed of convergence of the Monte Carlo estimator
// — the reliability ranking's AP on scenario 1 as a function of the
// number of simulation trials (1 .. 10^5), averaged over repeated runs,
// against the closed-solution AP and the random baseline.
//
// Paper shape: AP climbs from the random baseline and is already at the
// closed-solution plateau by ~1,000 trials (hence "1000 trials already
// deliver very reliable results"). Paper uses m = 100; set
// BIORANK_REPS=100 to match. Repetitions fan out over the shared thread
// pool (BIORANK_THREADS); results are identical at any thread count.

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/reliability_mc.h"
#include "eval/experiment_stats.h"
#include "integrate/scenario_harness.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  const int reps = bench::Repetitions(10);
  std::cout << "=== Figure 7: Monte Carlo convergence (m=" << reps
            << ") ===\n\n";

  bench::WallTimer total_timer;
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }

  // Closed-solution reference AP (deterministic).
  double closed_sum = 0.0;
  int closed_count = 0;
  double random_sum = 0.0;
  for (const ScenarioQuery& query : queries.value()) {
    if (query.relevant.empty()) continue;
    Result<double> ap =
        harness.ApForQuery(query, RankingMethod::kReliability);
    if (ap.ok()) {
      closed_sum += ap.value();
      ++closed_count;
    }
    Result<double> random = harness.RandomBaselineAp(query);
    if (random.ok()) random_sum += random.value();
  }
  double closed_ap = closed_count > 0 ? closed_sum / closed_count : 0.0;
  double random_ap = closed_count > 0 ? random_sum / closed_count : 0.0;

  TextTable table({"# trials", "Mean AP", "Stdv"});
  CsvWriter csv({"trials", "mean_ap", "stdev"});
  bench::JsonReport report("fig7_mc_convergence");
  const int64_t trial_counts[] = {1, 3, 10, 30, 100, 300, 1000, 3000, 10000};
  int64_t simulated_trials = 0;
  uint64_t seed = 1;
  bench::WallTimer mc_timer;
  for (int64_t trials : trial_counts) {
    ApExperiment experiment;
    for (const ScenarioQuery& query : queries.value()) {
      if (query.relevant.empty()) continue;
      // One root seed per (trials, query); repetition r draws from the
      // independent stream (seed, r), fanned out over the shared pool.
      Result<std::vector<double>> aps =
          harness.ApForMcReps(query, trials, reps, seed++);
      if (!aps.ok()) continue;
      for (double ap : aps.value()) {
        experiment.Record(std::to_string(trials), ap);
      }
      simulated_trials += trials * reps;
    }
    SampleStats stats = experiment.Summary(std::to_string(trials));
    table.AddRow({std::to_string(trials), FormatDouble(stats.mean, 3),
                  FormatDouble(stats.stddev, 3)});
    csv.AddRow({std::to_string(trials), FormatDouble(stats.mean, 4),
                FormatDouble(stats.stddev, 4)});
    report.AddRow({{"trials", trials},
                   {"mean_ap", stats.mean},
                   {"stdev", stats.stddev}});
  }
  double mc_seconds = mc_timer.Seconds();
  table.AddSeparator();
  table.AddRow({"closed solution", FormatDouble(closed_ap, 3), "-"});
  table.AddRow({"random baseline", FormatDouble(random_ap, 3), "-"});
  table.Print(std::cout);

  std::cout << "\nPaper: the curve reaches the closed-solution plateau "
               "(0.84) by ~1000 trials,\nstarting from the random baseline "
               "(0.42) at 1 trial.\n";
  bench::MaybeWriteCsv(csv, "fig7_mc_convergence");

  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("reps", reps);
  report.SetMetric("mc_wall_time_s", mc_seconds);
  report.SetMetric("simulated_trials", simulated_trials);
  report.SetMetric("trials_per_sec",
                   mc_seconds > 0.0
                       ? static_cast<double>(simulated_trials) / mc_seconds
                       : 0.0);
  report.SetMetric("closed_solution_ap", closed_ap);
  report.SetMetric("random_baseline_ap", random_ap);

  // CSR-vs-pointer head-to-head: one single-thread timed pass over every
  // query at 5000 trials per backend, scores compared bitwise. The
  // pointer path is the seed-era hot loop kept as the reference backend,
  // so this ratio is the snapshot refactor's speedup on this workload.
  const int64_t duel_trials = 5000;
  bool csr_bit_identical = true;
  double backend_seconds[2] = {0.0, 0.0};
  ThreadPool inline_pool(0);
  std::vector<double> backend_scores[2];
  const McOptions::Backend backends[2] = {McOptions::Backend::kCsrSnapshot,
                                          McOptions::Backend::kPointerView};
  for (int b = 0; b < 2; ++b) {
    bench::WallTimer timer;
    for (const ScenarioQuery& query : queries.value()) {
      McOptions mc;
      mc.trials = duel_trials;
      mc.seed = 7;
      mc.pool = &inline_pool;
      mc.backend = backends[b];
      Result<McEstimate> estimate = EstimateReliabilityMc(query.graph, mc);
      if (!estimate.ok()) {
        std::cerr << estimate.status() << "\n";
        return 1;
      }
      backend_scores[b].insert(backend_scores[b].end(),
                               estimate.value().scores.begin(),
                               estimate.value().scores.end());
    }
    backend_seconds[b] = timer.Seconds();
  }
  csr_bit_identical = backend_scores[0] == backend_scores[1];
  double csr_speedup = backend_seconds[0] > 0.0
                           ? backend_seconds[1] / backend_seconds[0]
                           : 0.0;
  std::cout << "\nCSR snapshot vs pointer view (1 thread, " << duel_trials
            << " trials/query): " << FormatDouble(csr_speedup, 2)
            << "x, scores "
            << (csr_bit_identical ? "bit-identical" : "NOT IDENTICAL (BUG)")
            << ".\n";
  report.SetMetric("csr_speedup", csr_speedup);
  report.SetMetric("csr_bit_identical", csr_bit_identical);
  report.SetMetric(
      "hardware_concurrency",
      static_cast<int64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  return report.Write().ok() && csr_bit_identical ? 0 : 1;
}
