#include "testing/differential.h"

#include <cstring>
#include <sstream>

#include "core/canonical.h"
#include "core/csr_snapshot.h"
#include "core/graph_algo.h"

namespace biorank::testing {

namespace {

DiffResult Fail(const std::string& message) { return {false, message}; }

/// Index and bit patterns of the first bitwise difference, for messages.
std::string DescribeFirstDivergence(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  std::ostringstream os;
  if (a.size() != b.size()) {
    os << "size " << a.size() << " vs " << b.size();
    return os.str();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a[i], sizeof(bits_a));
    std::memcpy(&bits_b, &b[i], sizeof(bits_b));
    if (bits_a != bits_b) {
      os << "index " << i << ": " << a[i] << " vs " << b[i] << " (bits 0x"
         << std::hex << bits_a << " vs 0x" << bits_b << ")";
      return os.str();
    }
  }
  return "no divergence";
}

}  // namespace

bool ScoresBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

DiffResult CompareMcBackends(const QueryGraph& query_graph, int64_t trials,
                             uint64_t seed, int num_threads,
                             McOptions::Mode mode) {
  McOptions mc;
  mc.trials = trials;
  mc.seed = seed;
  mc.num_threads = num_threads;
  mc.mode = mode;

  mc.backend = McOptions::Backend::kCsrSnapshot;
  Result<McEstimate> csr = EstimateReliabilityMc(query_graph, mc);
  mc.backend = McOptions::Backend::kPointerView;
  Result<McEstimate> ptr = EstimateReliabilityMc(query_graph, mc);

  if (csr.ok() != ptr.ok()) {
    return Fail("MC backends disagree on status: csr=" +
                (csr.ok() ? std::string("OK") : csr.status().message()) +
                " pointer=" +
                (ptr.ok() ? std::string("OK") : ptr.status().message()));
  }
  if (!csr.ok()) return {};  // Both failed identically: agreement.
  if (!ScoresBitIdentical(csr.value().scores, ptr.value().scores)) {
    return Fail("MC scores diverge at " +
                DescribeFirstDivergence(csr.value().scores,
                                        ptr.value().scores));
  }
  return {};
}

DiffResult CompareTopKBackends(const QueryGraph& query_graph,
                               const TopKOptions& base) {
  TopKOptions options = base;
  options.backend = McOptions::Backend::kCsrSnapshot;
  Result<TopKResult> csr = RankTopKAdaptive(query_graph, options);
  options.backend = McOptions::Backend::kPointerView;
  Result<TopKResult> ptr = RankTopKAdaptive(query_graph, options);

  if (csr.ok() != ptr.ok()) {
    return Fail("top-k backends disagree on status");
  }
  if (!csr.ok()) return {};
  const TopKResult& a = csr.value();
  const TopKResult& b = ptr.value();
  if (a.trials_used != b.trials_used) {
    return Fail("top-k trials_used diverge: " + std::to_string(a.trials_used) +
                " vs " + std::to_string(b.trials_used));
  }
  if (a.separated != b.separated) {
    return Fail("top-k separated flags diverge");
  }
  if (a.ranking.size() != b.ranking.size()) {
    return Fail("top-k ranking sizes diverge");
  }
  for (size_t i = 0; i < a.ranking.size(); ++i) {
    if (a.ranking[i].node != b.ranking[i].node ||
        a.ranking[i].rank_lo != b.ranking[i].rank_lo ||
        a.ranking[i].rank_hi != b.ranking[i].rank_hi) {
      return Fail("top-k ranking order diverges at position " +
                  std::to_string(i));
    }
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a.ranking[i].score, sizeof(bits_a));
    std::memcpy(&bits_b, &b.ranking[i].score, sizeof(bits_b));
    if (bits_a != bits_b) {
      return Fail("top-k score bits diverge at position " +
                  std::to_string(i));
    }
  }
  return {};
}

DiffResult CompareDiffusionBackends(const QueryGraph& query_graph,
                                    const DiffusionOptions& base) {
  DiffusionOptions options = base;
  options.backend = DiffusionOptions::Backend::kCsrSnapshot;
  Result<IterativeScores> csr = Diffuse(query_graph, options);
  options.backend = DiffusionOptions::Backend::kPointerView;
  Result<IterativeScores> ptr = Diffuse(query_graph, options);

  if (csr.ok() != ptr.ok()) {
    return Fail("diffusion backends disagree on status");
  }
  if (!csr.ok()) return {};
  if (csr.value().iterations != ptr.value().iterations) {
    return Fail("diffusion iteration counts diverge: " +
                std::to_string(csr.value().iterations) + " vs " +
                std::to_string(ptr.value().iterations));
  }
  if (csr.value().converged != ptr.value().converged) {
    return Fail("diffusion convergence flags diverge");
  }
  if (!ScoresBitIdentical(csr.value().scores, ptr.value().scores)) {
    return Fail("diffusion scores diverge at " +
                DescribeFirstDivergence(csr.value().scores,
                                        ptr.value().scores));
  }
  return {};
}

DiffResult CompareRestrictionBackends(const QueryGraph& query_graph) {
  const CsrSnapshot csr = BuildCsrSnapshot(query_graph.graph);
  for (NodeId target : query_graph.answers) {
    std::vector<bool> kept_ptr, kept_csr;
    RestrictToQueryRelevantSubgraph(query_graph, {target}, &kept_ptr);
    RestrictToQueryRelevantSubgraph(query_graph, {target}, csr, &kept_csr);
    if (kept_ptr != kept_csr) {
      return Fail("kept masks diverge for target " + std::to_string(target));
    }

    CanonicalizeOptions options;
    options.collect_provenance = true;
    Result<CanonicalCandidate> ptr_cand =
        CanonicalizeCandidate(query_graph, target, options);
    Result<CanonicalCandidate> csr_cand =
        CanonicalizeCandidate(query_graph, target, options, &csr);
    if (ptr_cand.ok() != csr_cand.ok()) {
      return Fail("canonicalization status diverges for target " +
                  std::to_string(target));
    }
    if (!ptr_cand.ok()) continue;
    if (ptr_cand.value().key.repr != csr_cand.value().key.repr) {
      return Fail("canonical keys diverge for target " +
                  std::to_string(target));
    }
    if (ptr_cand.value().provenance.nodes !=
            csr_cand.value().provenance.nodes ||
        ptr_cand.value().provenance.edges !=
            csr_cand.value().provenance.edges) {
      return Fail("provenance footprints diverge for target " +
                  std::to_string(target));
    }
  }
  return {};
}

}  // namespace biorank::testing
