#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace biorank {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextDouble());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, BernoulliDegenerateCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, BoundedIsApproximatelyUniform) {
  Rng rng(19);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, ShufflePermutesAllElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleIsNotIdentityForLongVectors) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, SplitGivesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Split();
  // Child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(47), b(47);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ca.NextUint64(), cb.NextUint64());
  }
}

TEST(StreamSeedTest, DeterministicInSeedAndStream) {
  EXPECT_EQ(DeriveStreamSeed(42, 7), DeriveStreamSeed(42, 7));
  EXPECT_NE(DeriveStreamSeed(42, 7), DeriveStreamSeed(42, 8));
  EXPECT_NE(DeriveStreamSeed(42, 7), DeriveStreamSeed(43, 7));
}

TEST(StreamSeedTest, ConsecutiveStreamsAreIndependent) {
  Rng a = Rng::ForStream(5, 0);
  Rng b = Rng::ForStream(5, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(StreamSeedTest, ForStreamMatchesDerivedSeed) {
  Rng direct(DeriveStreamSeed(99, 3));
  Rng stream = Rng::ForStream(99, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(direct.NextUint64(), stream.NextUint64());
  }
}

TEST(SplitMix64Test, KnownFirstOutputsAreStable) {
  uint64_t state = 0;
  uint64_t first = SplitMix64Next(state);
  uint64_t second = SplitMix64Next(state);
  EXPECT_NE(first, second);
  // Regression pin: SplitMix64 from seed 0 (reference values).
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64Next(s2), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64Next(s2), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace biorank
