#include "util/crc32c.h"

#include <array>

namespace biorank::util {
namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace biorank::util
