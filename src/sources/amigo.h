// Simulated AmiGO wrapper: GO term annotations per gene product,
// with evidence-code-derived probabilities (used in the Table 2
// scenario).

#ifndef BIORANK_SOURCES_AMIGO_H_
#define BIORANK_SOURCES_AMIGO_H_

#include <vector>

#include "datagen/evidence_model.h"
#include "datagen/protein_universe.h"
#include "schema/transforms.h"
#include "sources/data_source.h"

namespace biorank {

/// One AmiGO annotation: gene `gene_id` carries GO term `go_index` with
/// the given evidence code. Becomes a query-graph node with
/// pr = EvidenceCodeToPr(evidence).
struct GoAnnotation {
  int gene_id = 0;
  EvidenceCode evidence = EvidenceCode::kIEA;
  int go_index = 0;
};

/// Knobs for the simulated GO annotation store.
struct AmigoOptions {
  /// Fraction of curated functions that also carry an AmiGO annotation.
  double curated_coverage = 0.50;
  /// Probability a true-but-uncurated function has a weak IEA-style row.
  double weak_leak_probability = 0.3;
  /// Probability that a recently published function already has a fresh
  /// experimental annotation here (fast-tracked curation). The rest are
  /// only visible through TIGRFAM's updated models; the mix reproduces
  /// Table 2's spread (some new functions at rank 1-2, most mid-pack).
  double recent_annotation_probability = 0.4;
  /// Spurious annotations per gene.
  int min_spurious = 0;
  int max_spurious = 1;
  /// Fraction of spurious rows with deceptively strong evidence codes.
  double spurious_strong_fraction = 0.3;
};

/// Simulated AmiGO (the Gene Ontology annotation browser): curated GO
/// annotations per gene with evidence codes. Recently published functions
/// (scenario 2) are deliberately missing — curation lags the literature —
/// so their only evidence is the single strong TIGRFAM record.
class AmigoSource : public DataSource {
 public:
  AmigoSource(const ProteinUniverse& universe, const EvidenceModel& evidence,
              const AmigoOptions& options = {});

  std::string name() const override { return "AmiGO"; }
  int entity_set_count() const override { return 1; }
  int relationship_count() const override { return 4; }

  /// Annotations of one gene; empty for out-of-range ids.
  const std::vector<GoAnnotation>& AnnotationsFor(int gene_id) const;

  int total_annotations() const { return total_; }

 private:
  std::vector<std::vector<GoAnnotation>> annotations_;
  std::vector<GoAnnotation> empty_;
  int total_ = 0;
};

}  // namespace biorank

#endif  // BIORANK_SOURCES_AMIGO_H_
