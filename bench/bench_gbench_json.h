// Google-Benchmark adapter for the BENCH_*.json perf reports: runs the
// registered benchmarks with the normal console output while mirroring
// every measurement into a JsonReport row, so the gbench-based harnesses
// (fig8a/fig8b/ablation_diffusion) feed the same machine-readable
// pipeline as the plain bench binaries.

#ifndef BIORANK_BENCH_BENCH_GBENCH_JSON_H_
#define BIORANK_BENCH_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.h"

namespace biorank::bench {

/// Console reporter that also appends one JsonReport row per benchmark
/// run (name, iterations, adjusted real/cpu time in the run's time unit).
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(JsonReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      report_->AddRow(
          {{"name", run.benchmark_name()},
           {"iterations", static_cast<int64_t>(run.iterations)},
           {"real_time", run.GetAdjustedRealTime()},
           {"cpu_time", run.GetAdjustedCPUTime()},
           {"time_unit", benchmark::GetTimeUnitString(run.time_unit)}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  JsonReport* report_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: run all registered
/// benchmarks and write BENCH_<name>.json next to the console output.
inline int RunBenchmarksWithJson(const std::string& name, int argc,
                                 char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  WallTimer timer;
  JsonReport report(name);
  JsonMirrorReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.SetWallTime(timer.Seconds());
  Status write_status = report.Write();
  benchmark::Shutdown();
  return write_status.ok() ? 0 : 1;
}

}  // namespace biorank::bench

#endif  // BIORANK_BENCH_BENCH_GBENCH_JSON_H_
