#include "util/table.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"Method", "AP"});
  t.AddRow({"Rel", "0.84"});
  t.AddRow({"Prop", "0.85"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("Rel"), std::string::npos);
  EXPECT_NE(out.find("0.85"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable t({"A", "B"});
  t.AddRow({"longvalue", "x"});
  t.AddRow({"s", "y"});
  std::string out = t.ToString();
  // Every line should have the same length (aligned grid).
  size_t expected = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(TextTableTest, HandlesRowsWiderThanHeader) {
  TextTable t({"A"});
  t.AddRow({"1", "2", "3"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(TextTableTest, HandlesShortRows) {
  TextTable t({"A", "B", "C"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TextTableTest, SeparatorAddsRule) {
  TextTable t({"A"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y"});
  std::string out = t.ToString();
  // Header rule plus the explicit separator -> at least two dashed lines.
  size_t first = out.find("--");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(out.find("--", first + 2), std::string::npos);
}

TEST(TextTableTest, RowCountExcludesNothing) {
  TextTable t({"A"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"x"});
  t.AddSeparator();
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace biorank
