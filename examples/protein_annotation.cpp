// Full-pipeline example: the paper's motivating workflow. Generate the
// synthetic biological world, run the exploratory query
// (EntrezProtein.name = <symbol>, AmiGO) through the mediator, and rank
// the candidate functions of a well-studied protein by every relevance
// function, marking the gold standard.
//
// Run:  ./build/examples/protein_annotation

#include <algorithm>
#include <iostream>

#include "core/ranking.h"
#include "integrate/scenario_harness.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

int main() {
  std::cout << "== BioRank protein function annotation ==\n\n";

  ScenarioHarness harness;
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << "failed to build queries: " << queries.status() << "\n";
    return 1;
  }
  const ScenarioQuery& query = queries.value().front();

  std::cout << "Query: (EntrezProtein.name = \"" << query.spec.gene_symbol
            << "\", AmiGO)\n"
            << "Integrated query graph: " << query.graph.graph.num_nodes()
            << " nodes, " << query.graph.graph.num_edges() << " edges, "
            << query.answer_count << " candidate functions\n"
            << "Curated (gold) functions retrieved: "
            << query.gold_retrieved << " of " << query.gold_total << "\n\n";

  // The paper's Section 2 result listing: top functions by reliability.
  Result<std::vector<RankedAnswer>> ranked =
      harness.ranker().Rank(query.graph, RankingMethod::kReliability);
  if (!ranked.ok()) {
    std::cerr << "ranking failed: " << ranked.status() << "\n";
    return 1;
  }
  std::cout << "Top 10 candidate functions by reliability score:\n";
  TextTable top({"#", "GO term", "r score", "gold?"});
  for (size_t i = 0; i < ranked.value().size() && i < 10; ++i) {
    const RankedAnswer& answer = ranked.value()[i];
    top.AddRow({FormatRankInterval(answer.rank_lo, answer.rank_hi),
                query.graph.graph.node(answer.node).label,
                FormatDouble(answer.score, 4),
                query.relevant.count(answer.node) > 0 ? "yes" : ""});
  }
  top.Print(std::cout);

  std::cout << "\nRanking quality (tied average precision at 100% recall) "
               "of all five methods on this protein:\n";
  TextTable quality({"Method", "AP"});
  for (RankingMethod method : AllRankingMethods()) {
    Result<double> ap = harness.ApForQuery(query, method);
    quality.AddRow({RankingMethodName(method),
                    ap.ok() ? FormatDouble(ap.value(), 3)
                            : ap.status().ToString()});
  }
  Result<double> random = harness.RandomBaselineAp(query);
  if (random.ok()) {
    quality.AddRow({"Random", FormatDouble(random.value(), 3)});
  }
  quality.Print(std::cout);
  return 0;
}
