// Independent-OR relevance propagation (Section 3.2) - the paper's
// "Prop" score: a local fixpoint where a node's relevance is the
// noisy-OR of its parents' contributions.

#ifndef BIORANK_CORE_PROPAGATION_H_
#define BIORANK_CORE_PROPAGATION_H_

#include <vector>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Shared result type of the two iterative scoring algorithms
/// (propagation, Section 3.2; diffusion, Section 3.3).
struct IterativeScores {
  /// Per-NodeId relevance; the source is pinned at 1, dead nodes at 0.
  std::vector<double> scores;
  int iterations = 0;     ///< Outer iterations actually performed.
  bool converged = false; ///< Max score change fell below the tolerance.
};

/// Options for relevance propagation (Algorithm 3.2).
struct PropagationOptions {
  /// Safety cap on synchronous iterations. On DAGs the fixpoint is reached
  /// after at most the longest path length (Section 3.2); on cyclic graphs
  /// convergence is geometric.
  int max_iterations = 200;
  /// Stop once no score moves more than this between iterations.
  double tolerance = 1e-12;
};

/// Relevance propagation (Algorithm 3.2): each node's score depends only
/// on its parents, treating parent paths as independent,
///   r(y) = (1 - prod_{(x,y) in E} (1 - r(x) * q(x,y))) * p(y),
/// iterated synchronously from r(source) = 1. Because evidence combines
/// with independent-OR at each node, propagation scores dominate
/// reliability scores (tested as a property).
Result<IterativeScores> Propagate(const QueryGraph& query_graph,
                                  const PropagationOptions& options = {});

}  // namespace biorank

#endif  // BIORANK_CORE_PROPAGATION_H_
