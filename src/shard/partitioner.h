// Deterministic hash partitioning of the answer universe across N
// shards — the data-placement half of the scatter–gather serving layer
// (ROADMAP item 2). A shard owns an answer iff the stable FNV-1a hash
// of the answer's *label* (its canonical external identity, e.g. the
// "AmiGO:GO:..." term id) maps to that shard. Labels, not node ids, are
// the partition key: node ids are an artifact of one materialization
// and would not survive a socket transport, while labels identify the
// same answer on every replica of the universe. The same function
// partitions any string key — entity-set names, canonical keys — so
// future layers (cache placement, WAL routing) can reuse the one
// assignment and never disagree about ownership.

#ifndef BIORANK_SHARD_PARTITIONER_H_
#define BIORANK_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/query_graph.h"

namespace biorank::shard {

struct PartitionerOptions {
  /// Number of shards keys are spread over. Values below 1 are clamped
  /// to 1 (a single-shard deployment is the degenerate, always-valid
  /// topology).
  uint32_t num_shards = 1;
  /// Mixed into the hash so distinct deployments can decorrelate their
  /// placements; the default pins the repo-wide canonical placement.
  uint64_t salt = 0x62696f72616e6bULL;  // "biorank"
};

/// Pure, stateless, deterministic key -> shard assignment. Two
/// Partitioner instances built from equal options agree on every key —
/// the property that lets the router, the shard executors, and any
/// future placement-aware cache compute ownership independently.
class Partitioner {
 public:
  explicit Partitioner(PartitionerOptions options = {});

  uint32_t num_shards() const { return num_shards_; }

  /// The owning shard of a string key (FNV-1a 64 over salt || key,
  /// finalized with a splitmix64 avalanche so the modulo sees all 64
  /// bits; implementation-independent, unlike std::hash).
  uint32_t ShardOf(std::string_view key) const;

  /// Splits `graph.answers` into per-shard slices by answer label.
  /// Slices preserve the answer-set order (so every downstream fan-out
  /// stays deterministic), are disjoint, and cover the full answer set;
  /// slices may be empty — the router skips those shards entirely.
  std::vector<std::vector<NodeId>> PartitionAnswers(
      const QueryGraph& graph) const;

 private:
  uint32_t num_shards_;
  uint64_t salt_;
};

}  // namespace biorank::shard

#endif  // BIORANK_SHARD_PARTITIONER_H_
