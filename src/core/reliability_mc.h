// Monte Carlo estimation of source-target reliability (the paper's
// Algorithm 3.1), with both a naive sampler and the lazy depth-first
// sampler that only flips coins for elements actually reached.

#ifndef BIORANK_CORE_RELIABILITY_MC_H_
#define BIORANK_CORE_RELIABILITY_MC_H_

#include <cstdint>
#include <vector>

#include "core/csr_snapshot.h"
#include "core/query_graph.h"
#include "util/parallel.h"
#include "util/status.h"

namespace biorank {

/// Monte Carlo estimation options (Section 3.1, Algorithm 3.1).
struct McOptions {
  /// How the random subgraph is sampled per trial.
  enum class Mode {
    /// Algorithm 3.1: depth-first traversal from the source that only
    /// flips coins for elements actually reached. Identical estimator to
    /// kNaive, substantially faster (the paper reports an average 3.4x
    /// speedup on its scenario graphs).
    kTraversal,
    /// The naive simulation: flip a coin for every node and every edge,
    /// then test reachability. Kept as the baseline for the speedup
    /// comparison in `bench_reduction_stats`.
    kNaive,
  };

  /// Which graph substrate the trials run on. Both backends flip the
  /// same coins in the same order, so every estimate is bit-identical
  /// between them (pinned by tests/core_csr_differential_test.cc).
  enum class Backend {
    /// Flat CSR snapshot (core/csr_snapshot.h) with an inlined sampler —
    /// the hot path. Default.
    kCsrSnapshot,
    /// The seed-era CompactGraphView walk. Kept verbatim as the
    /// differential reference and for A/B timing in the benches.
    kPointerView,
  };

  int64_t trials = 10000;
  uint64_t seed = 42;
  Mode mode = Mode::kTraversal;
  Backend backend = Backend::kCsrSnapshot;
  /// Parallelism. Trials are split into fixed shards of `shard_trials`
  /// whose RNG streams depend only on (seed, shard index), and the
  /// per-shard reach counts are integers, so the estimate is bit-identical
  /// for any thread count: results depend only on (seed, trials,
  /// shard_trials, mode).
  ///
  /// 0 = use the full shared pool (`BIORANK_THREADS` or hardware
  /// concurrency); 1 = run inline on the calling thread; k > 1 = cap the
  /// pool at k concurrent threads. Negative values are rejected.
  int num_threads = 0;
  /// Trials per parallel shard. Larger shards amortize scheduling; smaller
  /// shards load-balance better. Changing this changes the RNG streams
  /// (and thus the exact estimate), so it is part of the reproducibility
  /// key.
  int64_t shard_trials = 512;
  /// Pool to fan shards out on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// A Monte Carlo reliability estimate.
struct McEstimate {
  /// Per-NodeId fraction of trials in which the node was reached from the
  /// source and present. Dead nodes get 0.
  std::vector<double> scores;
  int64_t trials = 0;
};

/// Estimates the reliability score of *every* node (answers included) of
/// the query graph by Monte Carlo simulation. Fails on invalid query
/// graphs or non-positive trial counts.
Result<McEstimate> EstimateReliabilityMc(const QueryGraph& query_graph,
                                         const McOptions& options = {});

/// Same estimator on a prebuilt CSR query snapshot, skipping the
/// per-call snapshot build — the fast path for callers that run many
/// batches against one graph (topk_mc's adaptive rounds, the Figure 7
/// repetition harness). `options.backend` is ignored (the snapshot *is*
/// the backend); scores come back indexed by the snapshot's original
/// NodeIds, exactly like EstimateReliabilityMc.
Result<McEstimate> EstimateReliabilityMcOnSnapshot(
    const CsrQuerySnapshot& snapshot, const McOptions& options = {});

/// Integer per-node reach counts for one contiguous range of the
/// deterministic shard schedule PlanTrialShards(options.trials,
/// options.shard_trials). This is the resumable half of the estimator:
/// shard i always draws from RNG stream (options.seed, i) regardless of
/// which call runs it, and the counts are integers, so summing the
/// tallies of any partition of [0, num_shards) reproduces — bit for bit
/// — the totals EstimateReliabilityMcOnSnapshot computes in one shot.
/// The serve layer's anytime refinement path rides this: each Refine
/// increment runs the next few shards and accumulates the tallies, and a
/// fully-refined estimate equals the blocking one exactly.
struct McShardTallies {
  /// Per original-NodeId reach counts over the range's trials (dead
  /// nodes count 0).
  std::vector<int64_t> counts;
  /// Trials the range covered (the sum of its shard sizes).
  int64_t trials = 0;
};
Result<McShardTallies> TallyReliabilityMcShards(
    const CsrQuerySnapshot& snapshot, const McOptions& options,
    int64_t shard_begin, int64_t shard_end);

}  // namespace biorank

#endif  // BIORANK_CORE_RELIABILITY_MC_H_
