#include "core/graph.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(GraphTest, AddNodeAssignsSequentialIds) {
  ProbabilisticEntityGraph g;
  EXPECT_EQ(g.AddNode(0.5), 0);
  EXPECT_EQ(g.AddNode(0.7), 1);
  EXPECT_EQ(g.num_nodes(), 2);
}

TEST(GraphTest, NodeProbabilityIsClamped) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.5);
  NodeId b = g.AddNode(-0.3);
  EXPECT_DOUBLE_EQ(g.node(a).p, 1.0);
  EXPECT_DOUBLE_EQ(g.node(b).p, 0.0);
}

TEST(GraphTest, AddEdgeConnectsNodes) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  Result<EdgeId> e = g.AddEdge(a, b, 0.5);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g.edge(e.value()).from, a);
  EXPECT_EQ(g.edge(e.value()).to, b);
  EXPECT_DOUBLE_EQ(g.edge(e.value()).q, 0.5);
  EXPECT_EQ(g.OutDegree(a), 1);
  EXPECT_EQ(g.InDegree(b), 1);
}

TEST(GraphTest, AddEdgeRejectsInvalidEndpoints) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  EXPECT_FALSE(g.AddEdge(a, 99, 0.5).ok());
  EXPECT_FALSE(g.AddEdge(-1, a, 0.5).ok());
}

TEST(GraphTest, AddEdgeRejectsDeadEndpoint) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  g.RemoveNode(b);
  EXPECT_FALSE(g.AddEdge(a, b, 0.5).ok());
}

TEST(GraphTest, ParallelEdgesAreAllowed) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  ASSERT_TRUE(g.AddEdge(a, b, 0.3).ok());
  ASSERT_TRUE(g.AddEdge(a, b, 0.4).ok());
  EXPECT_EQ(g.OutDegree(a), 2);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphTest, RemoveNodeKillsIncidentEdges) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  g.AddEdge(a, b, 0.5).value();
  g.AddEdge(b, c, 0.5).value();
  g.AddEdge(a, c, 0.5).value();
  g.RemoveNode(b);
  EXPECT_FALSE(g.IsValidNode(b));
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);  // Only a->c survives.
  EXPECT_EQ(g.OutDegree(a), 1);
  EXPECT_EQ(g.InDegree(c), 1);
}

TEST(GraphTest, RemoveNodeIsIdempotent) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  EXPECT_TRUE(g.RemoveNode(a).ok());
  EXPECT_TRUE(g.RemoveNode(a).ok());
  EXPECT_EQ(g.num_nodes(), 0);
}

TEST(GraphTest, RemoveNodeOutOfRangeFails) {
  ProbabilisticEntityGraph g;
  EXPECT_FALSE(g.RemoveNode(5).ok());
  EXPECT_FALSE(g.RemoveNode(-1).ok());
}

TEST(GraphTest, RemoveEdgeUpdatesDegrees) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  EdgeId e = g.AddEdge(a, b, 0.5).value();
  g.RemoveEdge(e);
  EXPECT_FALSE(g.IsValidEdge(e));
  EXPECT_EQ(g.OutDegree(a), 0);
  EXPECT_EQ(g.InDegree(b), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, SetProbsValidateAndClamp) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(0.5);
  NodeId b = g.AddNode(0.5);
  EdgeId e = g.AddEdge(a, b, 0.5).value();
  EXPECT_TRUE(g.SetNodeProb(a, 2.0).ok());
  EXPECT_DOUBLE_EQ(g.node(a).p, 1.0);
  EXPECT_TRUE(g.SetEdgeProb(e, -1.0).ok());
  EXPECT_DOUBLE_EQ(g.edge(e).q, 0.0);
  EXPECT_FALSE(g.SetNodeProb(42, 0.5).ok());
  EXPECT_FALSE(g.SetEdgeProb(42, 0.5).ok());
}

TEST(GraphTest, AliveNodesSkipsTombstones) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  g.RemoveNode(b);
  EXPECT_EQ(g.AliveNodes(), (std::vector<NodeId>{a, c}));
}

TEST(GraphTest, ForEachOutEdgeSkipsDeadEdges) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  NodeId c = g.AddNode(1.0);
  EdgeId e1 = g.AddEdge(a, b, 0.5).value();
  g.AddEdge(a, c, 0.5).value();
  g.RemoveEdge(e1);
  int count = 0;
  g.ForEachOutEdge(a, [&](EdgeId e) {
    ++count;
    EXPECT_EQ(g.edge(e).to, c);
  });
  EXPECT_EQ(count, 1);
}

TEST(CompactViewTest, MirrorsAliveStructure) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(0.9);
  NodeId b = g.AddNode(0.8);
  NodeId c = g.AddNode(0.7);
  g.AddEdge(a, b, 0.5).value();
  g.AddEdge(b, c, 0.4).value();
  g.AddEdge(a, c, 0.3).value();
  CompactGraphView view = CompactGraphView::FromGraph(g);
  EXPECT_EQ(view.node_count(), 3);
  EXPECT_DOUBLE_EQ(view.node_p[a], 0.9);
  EXPECT_EQ(view.out_offset[a + 1] - view.out_offset[a], 2);
  EXPECT_EQ(view.out_offset[b + 1] - view.out_offset[b], 1);
  EXPECT_EQ(view.in_offset[c + 1] - view.in_offset[c], 2);
}

TEST(CompactViewTest, DeadNodesHaveZeroProbAndNoEdges) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(0.9);
  NodeId b = g.AddNode(0.8);
  NodeId c = g.AddNode(0.7);
  g.AddEdge(a, b, 0.5).value();
  g.AddEdge(b, c, 0.4).value();
  g.RemoveNode(b);
  CompactGraphView view = CompactGraphView::FromGraph(g);
  EXPECT_EQ(view.node_count(), 3);  // Ids preserved.
  EXPECT_DOUBLE_EQ(view.node_p[b], 0.0);
  EXPECT_EQ(view.out_offset[a + 1] - view.out_offset[a], 0);
  EXPECT_EQ(view.in_offset[c + 1] - view.in_offset[c], 0);
}

TEST(CompactViewTest, EdgeDataMatches) {
  ProbabilisticEntityGraph g;
  NodeId a = g.AddNode(1.0);
  NodeId b = g.AddNode(1.0);
  g.AddEdge(a, b, 0.25).value();
  CompactGraphView view = CompactGraphView::FromGraph(g);
  ASSERT_EQ(view.edge_to.size(), 1u);
  EXPECT_EQ(view.edge_to[0], b);
  EXPECT_DOUBLE_EQ(view.edge_q[0], 0.25);
  ASSERT_EQ(view.edge_from.size(), 1u);
  EXPECT_EQ(view.edge_from[view.in_offset[b]], a);
  EXPECT_DOUBLE_EQ(view.in_edge_q[view.in_offset[b]], 0.25);
}

}  // namespace
}  // namespace biorank
