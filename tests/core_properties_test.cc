// Cross-algorithm property tests on randomly generated graphs. These pin
// the paper's structural claims:
//   - Proposition 3.1: reliability == propagation on trees.
//   - Propagation dominates reliability on every graph (Sect 3.2).
//   - The Section 3.1 reduction rules preserve source-target reliability.
//   - Factoring, brute force, Monte Carlo, and (where applicable) closed
//     form all agree.

#include <gtest/gtest.h>

#include "core/closed_form.h"
#include "core/propagation.h"
#include "core/reduction.h"
#include "core/reliability_exact.h"
#include "core/reliability_mc.h"
#include "testing/random_graphs.h"
#include "util/rng.h"

namespace biorank {
namespace {

class RandomDagProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagProperty, FactoringMatchesBruteForce) {
  Rng rng(1000 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 2;
  options.answers = 2;
  options.edge_density = 0.5;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  for (NodeId t : g.answers) {
    Result<double> brute = ExactReliabilityBruteForce(g, t, 24);
    Result<double> factored = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(brute.ok()) << brute.status();
    ASSERT_TRUE(factored.ok()) << factored.status();
    EXPECT_NEAR(brute.value(), factored.value(), 1e-10);
  }
}

TEST_P(RandomDagProperty, ReductionPreservesReliability) {
  Rng rng(2000 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 2;
  options.answers = 2;
  options.edge_density = 0.5;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);

  std::vector<double> before;
  for (NodeId t : g.answers) {
    Result<double> r = ExactReliabilityBruteForce(g, t, 24);
    ASSERT_TRUE(r.ok()) << r.status();
    before.push_back(r.value());
  }
  ReduceQueryGraph(g);
  for (size_t i = 0; i < g.answers.size(); ++i) {
    Result<double> r = ExactReliabilityBruteForce(g, g.answers[i], 24);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_NEAR(before[i], r.value(), 1e-10) << "answer " << i;
  }
}

TEST_P(RandomDagProperty, PropagationDominatesReliability) {
  Rng rng(3000 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 2;
  options.edge_density = 0.5;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  Result<IterativeScores> prop = Propagate(g);
  ASSERT_TRUE(prop.ok());
  for (NodeId t : g.answers) {
    Result<double> rel = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(rel.ok()) << rel.status();
    EXPECT_GE(prop.value().scores[t] + 1e-9, rel.value()) << "answer " << t;
  }
}

TEST_P(RandomDagProperty, McConvergesToFactoring) {
  Rng rng(4000 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 2;
  options.answers = 1;
  options.edge_density = 0.6;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  NodeId t = g.answers[0];
  Result<double> exact = ExactReliabilityFactoring(g, t);
  ASSERT_TRUE(exact.ok()) << exact.status();
  McOptions mc;
  mc.trials = 100000;
  mc.seed = 4000 + GetParam();
  Result<McEstimate> estimate = EstimateReliabilityMc(g, mc);
  ASSERT_TRUE(estimate.ok());
  // 100k trials: standard error <= 0.0016; 5 sigma margin.
  EXPECT_NEAR(estimate.value().scores[t], exact.value(), 0.01);
}

TEST_P(RandomDagProperty, ClosedFormMatchesFactoringWhenItApplies) {
  Rng rng(5000 + GetParam());
  testing::RandomDagOptions options;
  options.layers = 2;
  options.nodes_per_layer = 3;
  options.answers = 2;
  options.edge_density = 0.4;
  QueryGraph g = testing::MakeRandomLayeredDag(rng, options);
  for (NodeId t : g.answers) {
    Result<double> closed = ClosedFormReliability(g, t);
    if (!closed.ok()) continue;  // Irreducible target: nothing to check.
    Result<double> exact = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(exact.ok()) << exact.status();
    EXPECT_NEAR(closed.value(), exact.value(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagProperty, ::testing::Range(0, 12));

class RandomTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeProperty, Proposition31ReliabilityEqualsPropagation) {
  Rng rng(6000 + GetParam());
  QueryGraph g = testing::MakeRandomTree(rng, /*depth=*/3, /*branching=*/2,
                                         /*certain_nodes=*/false);
  Result<IterativeScores> prop = Propagate(g);
  ASSERT_TRUE(prop.ok());
  for (NodeId t : g.answers) {
    Result<double> rel = ExactReliabilityFactoring(g, t);
    ASSERT_TRUE(rel.ok()) << rel.status();
    EXPECT_NEAR(prop.value().scores[t], rel.value(), 1e-9) << "leaf " << t;
  }
}

TEST_P(RandomTreeProperty, TreesAreFullyReducible) {
  // Theorem 3.2 part A specializes to data trees: reductions always give a
  // closed solution.
  Rng rng(7000 + GetParam());
  QueryGraph g = testing::MakeRandomTree(rng, /*depth=*/3, /*branching=*/2,
                                         /*certain_nodes=*/false);
  for (NodeId t : g.answers) {
    Result<double> closed = ClosedFormReliability(g, t);
    EXPECT_TRUE(closed.ok()) << closed.status();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty, ::testing::Range(0, 8));

class RandomDigraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomDigraphProperty, McMatchesBruteForceEvenWithCycles) {
  Rng rng(8000 + GetParam());
  QueryGraph g =
      testing::MakeRandomDigraph(rng, /*num_nodes=*/5, /*edge_density=*/0.4,
                                 /*num_answers=*/2);
  for (NodeId t : g.answers) {
    Result<double> brute = ExactReliabilityBruteForce(g, t, 24);
    if (!brute.ok()) continue;  // Too many uncertain elements this seed.
    McOptions mc;
    mc.trials = 60000;
    mc.seed = 8000 + GetParam();
    Result<McEstimate> estimate = EstimateReliabilityMc(g, mc);
    ASSERT_TRUE(estimate.ok());
    EXPECT_NEAR(estimate.value().scores[t], brute.value(), 0.015);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDigraphProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace biorank
