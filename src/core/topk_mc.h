// Adaptive top-k ranking by Monte Carlo: interleaves sampling with
// the Theorem 3.1 confidence bound so low-ranked answers are abandoned
// early while the top k get tight estimates.

#ifndef BIORANK_CORE_TOPK_MC_H_
#define BIORANK_CORE_TOPK_MC_H_

#include <cstdint>

#include "core/ranking.h"
#include "core/reliability_mc.h"
#include "util/parallel.h"
#include "util/status.h"

namespace biorank {

/// Options for adaptive top-k Monte Carlo ranking.
struct TopKOptions {
  int k = 10;                  ///< How many top answers must be stable.
  double confidence = 0.95;    ///< Separation confidence at the boundary.
  int64_t batch_trials = 500;  ///< Trials added per adaptive round.
  int64_t max_trials = 100000; ///< Hard budget.
  uint64_t seed = 42;
  /// Apply the Section 3.1 reductions before simulating.
  bool reduce_first = true;
  /// Parallelism for the per-round Monte Carlo batches, with McOptions
  /// semantics (0 = full shared pool, 1 = inline, k = cap at k). Batch b
  /// draws from RNG stream (seed, b), so the adaptive trajectory — scores,
  /// trials used, separation — is identical at any thread count.
  int num_threads = 0;
  /// Pool to fan batches out on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// MC substrate. With kCsrSnapshot the reduced query graph is packed
  /// into one flat snapshot reused by every adaptive round — the rounds
  /// only differ in RNG stream, so the per-round view rebuild of the
  /// pointer path is pure waste. Trajectories are bit-identical between
  /// backends (same coins in the same order).
  McOptions::Backend backend = McOptions::Backend::kCsrSnapshot;
};

/// Result of adaptive top-k ranking.
struct TopKResult {
  /// Tie-aware ranking of the full answer set by the final estimates.
  std::vector<RankedAnswer> ranking;
  int64_t trials_used = 0;
  /// True if the k / k+1 boundary separated at the requested confidence
  /// before the budget ran out; false means the caller should treat the
  /// boundary as a statistical tie (Theorem 3.1's "if scores are that
  /// close, we do not have enough evidence to distinguish them").
  bool separated = false;
};

/// Ranks the answer set by reliability using only as many Monte Carlo
/// trials as the ranking actually needs: simulation proceeds in batches
/// until the gap between the k-th and (k+1)-th estimated scores exceeds
/// the normal-approximation confidence radius of their difference.
///
/// This operationalizes Theorem 3.1 adaptively: instead of fixing n from
/// a worst-case eps up front, the boundary's observed eps-hat drives the
/// stopping rule. Exploratory-search users only read the top of the
/// list, so this is the practical fast path.
Result<TopKResult> RankTopKAdaptive(const QueryGraph& query_graph,
                                    const TopKOptions& options = {});

}  // namespace biorank

#endif  // BIORANK_CORE_TOPK_MC_H_
