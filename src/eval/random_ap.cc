#include "eval/random_ap.h"

namespace biorank {

Result<double> RandomAveragePrecision(int k, int n) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (n == 1) return 1.0;  // The single item is relevant.
  double sum = 0.0;
  for (int i = 1; i <= n; ++i) {
    sum += (static_cast<double>(k - 1) * (i - 1) + (n - 1)) /
           (static_cast<double>(i) * (n - 1) * n);
  }
  return sum;
}

}  // namespace biorank
