#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

namespace biorank::obs {

namespace {

/// Shortest round-trippable decimal for a metric value (%.17g is
/// lossless but ugly; %g at 12 digits is exact for every counter and
/// bound this stack emits).
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHeader(std::string& out, const std::string& name,
                  const std::string& help, const char* type) {
  out += "# HELP " + name + " " +
         (help.empty() ? std::string("(no help)") : EscapeHelp(help)) + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string RenderPrometheusText(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    AppendHeader(out, c.name, c.help, "counter");
    out += c.name + " " + FormatValue(static_cast<double>(c.value)) + "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    AppendHeader(out, g.name, g.help, "gauge");
    out += g.name + " " + FormatValue(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    AppendHeader(out, h.name, h.help, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += h.name + "_bucket{le=\"" + FormatValue(h.bounds[i]) + "\"} " +
             FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " +
           FormatValue(static_cast<double>(h.count)) + "\n";
    out += h.name + "_sum " + FormatValue(h.sum) + "\n";
    out += h.name + "_count " + FormatValue(static_cast<double>(h.count)) +
           "\n";
  }
  return out;
}

std::string RenderJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(c.name) +
           "\": " + FormatValue(static_cast<double>(c.value));
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const GaugeSnapshot& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(g.name) + "\": " + FormatValue(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + JsonEscape(h.name) + "\": {\n";
    out += "      \"count\": " + FormatValue(static_cast<double>(h.count)) +
           ",\n";
    out += "      \"sum\": " + FormatValue(h.sum) + ",\n";
    out += "      \"p50\": " + FormatValue(h.Quantile(0.50)) + ",\n";
    out += "      \"p99\": " + FormatValue(h.Quantile(0.99)) + ",\n";
    out += "      \"p999\": " + FormatValue(h.Quantile(0.999)) + ",\n";
    out += "      \"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      out += (i ? ", " : "") + FormatValue(h.bounds[i]);
    }
    out += "],\n      \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      out += (i ? ", " : "") + FormatValue(static_cast<double>(h.counts[i]));
    }
    out += "]\n    }";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string RenderTraceTree(const CapturedTrace& trace) {
  std::string out = "trace " + std::to_string(trace.id) + " [" +
                    trace.entry_point + "] total " +
                    FormatValue(trace.total_s) + " s\n";
  // Children in span-creation order under each parent.
  std::vector<std::vector<int>> children(trace.spans.size());
  std::vector<int> roots;
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const int parent = trace.spans[i].parent;
    if (parent >= 0 && parent < static_cast<int>(trace.spans.size())) {
      children[static_cast<size_t>(parent)].push_back(static_cast<int>(i));
    } else {
      roots.push_back(static_cast<int>(i));
    }
  }
  std::function<void(int, int)> emit = [&](int index, int depth) {
    const Span& span = trace.spans[static_cast<size_t>(index)];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "- " + span.name + " " +
           FormatValue(static_cast<double>(span.duration_ns) / 1e9) + " s";
    for (const auto& [key, value] : span.counters) {
      out += " " + key + "=" + std::to_string(value);
    }
    out += "\n";
    for (int child : children[static_cast<size_t>(index)]) {
      emit(child, depth + 1);
    }
  };
  for (int root : roots) emit(root, 0);
  return out;
}

}  // namespace biorank::obs
