// Theorem 3.2 demo: decide whether an E/R schema is reducible — i.e.
// whether every data instance collapses to closed-form reliability under
// the Section 3.1 reduction rules — and print the contraction trace.
//
// Run:  ./build/examples/schema_reducibility

#include <iostream>

#include "schema/reducibility.h"

using namespace biorank;

namespace {

ErSchema Chain(const std::vector<Cardinality>& types) {
  ErSchema schema;
  for (size_t i = 0; i <= types.size(); ++i) {
    schema.AddEntitySet({"E" + std::to_string(i), {}, 1.0});
  }
  for (size_t i = 0; i < types.size(); ++i) {
    schema.AddRelationship({"R" + std::to_string(i), "E" + std::to_string(i),
                            "E" + std::to_string(i + 1), types[i], 1.0});
  }
  return schema;
}

void Report(const std::string& title, const ErSchema& schema,
            const CompositionOracle& oracle) {
  ReducibilityResult result = CheckSchemaReducibility(schema, oracle);
  std::cout << title << "\n  verdict: "
            << (result.reducible ? "REDUCIBLE" : "not provably reducible")
            << "\n";
  for (const std::string& step : result.trace) {
    std::cout << "  - " << step << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Theorem 3.2: reducible schemas ==\n\n";

  Report("Figure 2a: [1:n] [m:n] [n:1]",
         Chain({Cardinality::kOneToMany, Cardinality::kManyToMany,
                Cardinality::kManyToOne}),
         {});

  Report("Figure 2b: [1:n] [1:n] [n:1] [n:1] (no domain knowledge)",
         Chain({Cardinality::kOneToMany, Cardinality::kOneToMany,
                Cardinality::kManyToOne, Cardinality::kManyToOne}),
         {});

  {
    // Figure 3a: with domain knowledge the innermost compositions stay
    // functional, and contraction cascades.
    CompositionOracle oracle;
    oracle.Declare("R0", "R1", Cardinality::kOneToOne);
    oracle.Declare("R2", "R3", Cardinality::kOneToMany);
    Report("Figure 3a: [1:n] [n:1] [1:n] [n:1] with composition knowledge",
           Chain({Cardinality::kOneToMany, Cardinality::kManyToOne,
                  Cardinality::kOneToMany, Cardinality::kManyToOne}),
           oracle);
  }
  {
    // Figure 3b: the first composition is known to be [m:n]: stuck.
    CompositionOracle oracle;
    oracle.Declare("R0", "R1", Cardinality::kManyToMany);
    Report("Figure 3b: same chain, first composition known to be [m:n]",
           Chain({Cardinality::kOneToMany, Cardinality::kManyToOne,
                  Cardinality::kOneToMany, Cardinality::kManyToOne}),
           oracle);
  }

  std::cout << "Theorem 3.2 is sufficient, not necessary: Figure 2d's\n"
               "benign [m:n] instances reduce at the data level even though\n"
               "the schema check reports 'not provably reducible'. BioRank\n"
               "therefore falls back to per-target reductions at query time\n"
               "(core/closed_form.h) and to Monte Carlo when those fail.\n";
  return 0;
}
