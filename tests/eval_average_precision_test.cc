#include "eval/average_precision.h"

#include <gtest/gtest.h>

namespace biorank {
namespace {

TEST(ApTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(
      AveragePrecision({true, true, false, false}).value(), 1.0);
}

TEST(ApTest, SingleRelevantAtRankK) {
  // One relevant item at rank 3 of 4: AP = 1/3.
  Result<double> ap = AveragePrecision({false, false, true, false});
  ASSERT_TRUE(ap.ok());
  EXPECT_NEAR(ap.value(), 1.0 / 3.0, 1e-12);
}

TEST(ApTest, TextbookExample) {
  // rel = 1,0,1,0,1: P@1=1, P@3=2/3, P@5=3/5 -> AP=(1+2/3+3/5)/3.
  Result<double> ap = AveragePrecision({true, false, true, false, true});
  ASSERT_TRUE(ap.ok());
  EXPECT_NEAR(ap.value(), (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0, 1e-12);
}

TEST(ApTest, WorstRankingOfKRelevant) {
  // k relevant all at the bottom of n=5, k=2: P@4=1/4, P@5=2/5.
  Result<double> ap =
      AveragePrecision({false, false, false, true, true});
  ASSERT_TRUE(ap.ok());
  EXPECT_NEAR(ap.value(), (0.25 + 0.4) / 2.0, 1e-12);
}

TEST(ApTest, AllRelevantIsOne) {
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true, true}).value(), 1.0);
}

TEST(ApTest, NoRelevantIsUndefined) {
  Result<double> ap = AveragePrecision({false, false});
  ASSERT_FALSE(ap.ok());
  EXPECT_EQ(ap.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApTest, EmptyListIsUndefined) {
  EXPECT_FALSE(AveragePrecision({}).ok());
}

TEST(PrecisionAtTest, PrefixCounts) {
  std::vector<bool> rel = {true, false, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAt(rel, 1).value(), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAt(rel, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAt(rel, 3).value(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAt(rel, 4).value(), 0.5);
}

TEST(PrecisionAtTest, OutOfRangeFails) {
  std::vector<bool> rel = {true};
  EXPECT_FALSE(PrecisionAt(rel, 0).ok());
  EXPECT_FALSE(PrecisionAt(rel, 2).ok());
}

}  // namespace
}  // namespace biorank
