#ifndef BIORANK_TESTS_TESTING_RANDOM_GRAPHS_H_
#define BIORANK_TESTS_TESTING_RANDOM_GRAPHS_H_

#include <vector>

#include "core/query_graph.h"
#include "util/rng.h"

namespace biorank::testing {

/// Parameters for random layered DAGs. The shape mimics the paper's
/// scientific-workflow query graphs: a source, several layers of records,
/// and a final layer of answers, with forward edges between consecutive
/// (and occasionally skipping) layers.
struct RandomDagOptions {
  int layers = 3;               ///< Interior layers between source and answers.
  int nodes_per_layer = 4;
  int answers = 3;
  double edge_density = 0.5;    ///< Probability of each candidate edge.
  double skip_density = 0.1;    ///< Probability of layer-skipping edges.
  double min_node_p = 0.3;      ///< Node probabilities drawn from [min, 1].
  double min_edge_q = 0.2;      ///< Edge probabilities drawn from [min, 1].
  bool certain_nodes = false;   ///< Force all node probabilities to 1.
};

/// Builds a random layered DAG query graph. Every answer is guaranteed at
/// least one incoming edge, and the source at least one outgoing edge, so
/// query graphs are never trivially disconnected.
QueryGraph MakeRandomLayeredDag(Rng& rng, const RandomDagOptions& options);

/// Builds a random out-tree rooted at the source with `depth` levels and
/// `branching` children per node; answers are the leaves. Used to test
/// Proposition 3.1 (reliability == propagation on trees).
QueryGraph MakeRandomTree(Rng& rng, int depth, int branching,
                          bool certain_nodes);

/// Builds a small random digraph (possibly cyclic) over `num_nodes` nodes
/// with uniform edge probability `edge_density`; answers are `num_answers`
/// distinct non-source nodes. Used for cycle handling tests.
QueryGraph MakeRandomDigraph(Rng& rng, int num_nodes, double edge_density,
                             int num_answers);

}  // namespace biorank::testing

#endif  // BIORANK_TESTS_TESTING_RANDOM_GRAPHS_H_
