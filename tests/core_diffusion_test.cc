#include "core/diffusion.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(DiffusionInnerSolveTest, NoParentsIsZero) {
  EXPECT_DOUBLE_EQ(
      SolveDiffusionInflow({}, {}, DiffusionInnerSolver::kAnalytic), 0.0);
}

TEST(DiffusionInnerSolveTest, SingleParentClosedForm) {
  // t = (r - t) q  =>  t = rq / (1 + q).
  double t = SolveDiffusionInflow({1.0}, {0.5},
                                  DiffusionInnerSolver::kAnalytic);
  EXPECT_NEAR(t, 0.5 / 1.5, 1e-12);
}

TEST(DiffusionInnerSolveTest, TwoEqualParents) {
  // Figure 4a's answer node: parents r=1/6, q=1 twice -> t = (2/6)/3 = 1/9.
  double t = SolveDiffusionInflow({1.0 / 6, 1.0 / 6}, {1.0, 1.0},
                                  DiffusionInnerSolver::kAnalytic);
  EXPECT_NEAR(t, 1.0 / 9, 1e-12);
}

TEST(DiffusionInnerSolveTest, WeakParentExcludedFromFlow) {
  // Strong parent r=1.0 q=1, weak parent r=0.1 q=1: candidate with both
  // included gives t=(1.1)/3=0.3667 > 0.1, inconsistent; only the strong
  // parent flows: t = 1/2 = 0.5. Check: (1-0.5)*1 + max((0.1-0.5),0) = 0.5.
  double t = SolveDiffusionInflow({1.0, 0.1}, {1.0, 1.0},
                                  DiffusionInnerSolver::kAnalytic);
  EXPECT_NEAR(t, 0.5, 1e-12);
}

TEST(DiffusionInnerSolveTest, BisectionMatchesAnalyticOnRandomInputs) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBounded(6));
    std::vector<double> r(n), q(n);
    for (int i = 0; i < n; ++i) {
      r[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
    }
    double analytic =
        SolveDiffusionInflow(r, q, DiffusionInnerSolver::kAnalytic);
    double bisect =
        SolveDiffusionInflow(r, q, DiffusionInnerSolver::kBisection);
    EXPECT_NEAR(analytic, bisect, 1e-9) << "trial " << trial;
  }
}

TEST(DiffusionInnerSolveTest, SolutionSatisfiesFixpointEquation) {
  Rng rng(556);
  for (int trial = 0; trial < 100; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBounded(5));
    std::vector<double> r(n), q(n);
    for (int i = 0; i < n; ++i) {
      r[i] = rng.NextDouble();
      q[i] = rng.NextDouble();
    }
    double t = SolveDiffusionInflow(r, q, DiffusionInnerSolver::kAnalytic);
    double f = 0.0;
    for (int i = 0; i < n; ++i) f += std::max((r[i] - t) * q[i], 0.0);
    EXPECT_NEAR(t, f, 1e-9) << "trial " << trial;
  }
}

TEST(DiffusionTest, Fig4aMatchesPaper) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  // Figure 4a reports diffusion r = 0.11 = 1/9.
  EXPECT_NEAR(r.value().scores[g.answers[0]], 1.0 / 9, 1e-6);
}

TEST(DiffusionTest, WheatstoneBridgeFixpoint) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  // The unique fixpoint of the Section 3.3 equations on the bridge:
  // r_bar(a) = r_bar(b) = 1/3, r_bar(u) = 1/6. (The figure prints 0.11,
  // which equals the Fig 4a value; see EXPERIMENTS.md for the note.)
  EXPECT_NEAR(r.value().scores[g.answers[0]], 1.0 / 6, 1e-6);
}

TEST(DiffusionTest, SourceIsPinnedAtOne) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().scores[g.source], 1.0);
}

TEST(DiffusionTest, NodeProbabilityScalesScore) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.5, "t");
  b.Edge(b.Source(), t, 1.0);
  QueryGraph g = std::move(b).Build({t});
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  // r_bar(t) = 1/2 (single certain edge), r(t) = 1/2 * p = 0.25.
  EXPECT_NEAR(r.value().scores[t], 0.25, 1e-9);
}

TEST(DiffusionTest, FavorsShortStrongPathOverLongOne) {
  // One-hop strong path vs three-hop equally strong path: the diffusion
  // semantics (Sect 3.3) penalizes path length much more than propagation.
  QueryGraphBuilder b;
  NodeId near_t = b.Node(1.0, "near");
  NodeId m1 = b.Node(1.0), m2 = b.Node(1.0);
  NodeId far_t = b.Node(1.0, "far");
  b.Edge(b.Source(), near_t, 0.9);
  b.Edge(b.Source(), m1, 0.9);
  b.Edge(m1, m2, 1.0);
  b.Edge(m2, far_t, 1.0);
  QueryGraph g = std::move(b).Build({near_t, far_t});
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().scores[near_t], r.value().scores[far_t]);
}

TEST(DiffusionTest, BisectionSolverAgreesOnGraphScores) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  DiffusionOptions analytic;
  DiffusionOptions bisect;
  bisect.solver = DiffusionInnerSolver::kBisection;
  Result<IterativeScores> ra = Diffuse(g, analytic);
  Result<IterativeScores> rb = Diffuse(g, bisect);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (NodeId i : g.graph.AliveNodes()) {
    EXPECT_NEAR(ra.value().scores[i], rb.value().scores[i], 1e-6);
  }
}

TEST(DiffusionTest, ConvergesOnCycles) {
  QueryGraphBuilder b;
  NodeId a = b.Node(1.0, "a");
  NodeId bb = b.Node(1.0, "b");
  b.Edge(b.Source(), a, 0.5);
  b.Edge(a, bb, 0.8);
  b.Edge(bb, a, 0.8);
  QueryGraph g = std::move(b).Build({a, bb});
  Result<IterativeScores> r = Diffuse(g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().converged);
}

TEST(DiffusionTest, RejectsBadOptions) {
  QueryGraph g = MakeFig4aSerialParallel();
  DiffusionOptions options;
  options.max_iterations = 0;
  EXPECT_FALSE(Diffuse(g, options).ok());
}

}  // namespace
}  // namespace biorank
