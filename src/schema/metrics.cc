#include "schema/metrics.h"

#include <algorithm>

namespace biorank {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

ProbabilisticMetrics ProbabilisticMetrics::FromSchema(const ErSchema& schema) {
  ProbabilisticMetrics metrics;
  for (const EntitySetDef& e : schema.entity_sets()) {
    metrics.ps_[e.name] = e.ps;
  }
  for (const RelationshipDef& r : schema.relationships()) {
    metrics.qs_[r.name] = r.qs;
  }
  return metrics;
}

Status ProbabilisticMetrics::SetSourceConfidence(
    const std::string& entity_set, double ps) {
  if (ps < 0.0 || ps > 1.0) {
    return Status::InvalidArgument("ps must be in [0,1]: " + entity_set);
  }
  ps_[entity_set] = ps;
  return Status::OK();
}

Status ProbabilisticMetrics::SetRelationshipConfidence(
    const std::string& relationship, double qs) {
  if (qs < 0.0 || qs > 1.0) {
    return Status::InvalidArgument("qs must be in [0,1]: " + relationship);
  }
  qs_[relationship] = qs;
  return Status::OK();
}

bool ProbabilisticMetrics::HasSourceConfidence(
    const std::string& entity_set) const {
  return ps_.count(entity_set) > 0;
}

double ProbabilisticMetrics::SourceConfidence(
    const std::string& entity_set) const {
  auto it = ps_.find(entity_set);
  return it == ps_.end() ? 1.0 : it->second;
}

double ProbabilisticMetrics::RelationshipConfidence(
    const std::string& relationship) const {
  auto it = qs_.find(relationship);
  return it == qs_.end() ? 1.0 : it->second;
}

double ProbabilisticMetrics::NodeProbability(const std::string& entity_set,
                                             double pr) const {
  return SourceConfidence(entity_set) * Clamp01(pr);
}

double ProbabilisticMetrics::EdgeProbability(const std::string& relationship,
                                             double qr) const {
  return RelationshipConfidence(relationship) * Clamp01(qr);
}

}  // namespace biorank
