#include "api/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace biorank::api {
namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

TEST(AdmissionQueueTest, UnlimitedByDefault) {
  AdmissionQueue queue;
  std::vector<AdmissionQueue::Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    Result<AdmissionQueue::Ticket> ticket = queue.Admit();
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    EXPECT_TRUE(ticket.value().valid());
    tickets.push_back(std::move(ticket).value());
  }
  AdmissionStats stats = queue.Stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.inflight, 8);
  tickets.clear();
  EXPECT_EQ(queue.Stats().inflight, 0);
}

TEST(AdmissionQueueTest, ExpiredDeadlineRejectsImmediately) {
  AdmissionQueue queue;  // Slots free — the deadline alone rejects.
  Result<AdmissionQueue::Ticket> ticket =
      queue.Admit(Clock::now() - milliseconds(1));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.Stats().rejected_deadline, 1u);
  EXPECT_EQ(queue.Stats().admitted, 0u);
}

TEST(AdmissionQueueTest, QueueOverflowRejectsWithResourceExhausted) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  options.max_queue_depth = 0;  // Saturated means rejected, never parked.
  AdmissionQueue queue(options);
  Result<AdmissionQueue::Ticket> holder = queue.Admit();
  ASSERT_TRUE(holder.ok()) << holder.status();
  Result<AdmissionQueue::Ticket> overflow = queue.Admit();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.Stats().rejected_capacity, 1u);
}

TEST(AdmissionQueueTest, DeadlineExpiresWhileQueued) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionQueue queue(options);
  // The holder keeps the only slot for the waiter's whole deadline
  // window, so the waiter must park, expire, and come back typed.
  Result<AdmissionQueue::Ticket> holder = queue.Admit();
  ASSERT_TRUE(holder.ok()) << holder.status();
  Status observed;
  double waited_s = -1.0;
  std::thread waiter([&queue, &observed, &waited_s] {
    Result<AdmissionQueue::Ticket> ticket =
        queue.Admit(Clock::now() + milliseconds(20));
    observed = ticket.status();
    waited_s = ticket.ok() ? ticket.value().queue_s() : -1.0;
  });
  waiter.join();
  EXPECT_EQ(observed.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(waited_s, -1.0);
  AdmissionStats stats = queue.Stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.queue_wait_s_total, 0.0);

  // The slot was never leaked: releasing the holder lets a fresh
  // arrival straight through.
  holder.value() = AdmissionQueue::Ticket();
  Result<AdmissionQueue::Ticket> next = queue.Admit(Clock::now() + milliseconds(100));
  ASSERT_TRUE(next.ok()) << next.status();
}

TEST(AdmissionQueueTest, EarliestDeadlineIsAdmittedFirst) {
  AdmissionOptions options;
  options.max_concurrent = 1;
  AdmissionQueue queue(options);
  Result<AdmissionQueue::Ticket> holder = queue.Admit();
  ASSERT_TRUE(holder.ok()) << holder.status();

  std::mutex order_mu;
  std::vector<std::string> order;
  auto waiter = [&](const std::string& name, milliseconds slack) {
    Result<AdmissionQueue::Ticket> ticket = queue.Admit(Clock::now() + slack);
    if (ticket.ok()) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
    }
    // Holding briefly keeps admissions strictly sequential.
    std::this_thread::sleep_for(milliseconds(5));
  };
  // "late" arrives first but has the later deadline; "soon" must jump it.
  std::thread late(waiter, "late", milliseconds(10000));
  while (queue.Stats().queue_depth < 1) std::this_thread::yield();
  std::thread soon(waiter, "soon", milliseconds(5000));
  while (queue.Stats().queue_depth < 2) std::this_thread::yield();

  holder.value() = AdmissionQueue::Ticket();  // Free the slot.
  late.join();
  soon.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "soon");
  EXPECT_EQ(order[1], "late");
  AdmissionStats stats = queue.Stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.queued, 2u);
  EXPECT_EQ(stats.peak_queue_depth, 2u);
  EXPECT_EQ(stats.inflight, 0);
}

TEST(AdmissionQueueTest, ManyContendersAllResolveExactlyOnce) {
  // A hammer for the waiter bookkeeping: every Admit either gets a
  // ticket or a typed rejection, slots never leak, and the gauges
  // return to zero. Run under TSan via the concurrency label.
  AdmissionOptions options;
  options.max_concurrent = 2;
  options.max_queue_depth = 64;
  AdmissionQueue queue(options);
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&queue, &served, &rejected, t] {
      for (int i = 0; i < 25; ++i) {
        // A mix of generous and hopeless deadlines.
        milliseconds slack(t % 2 == 0 ? 2000 : 0);
        Result<AdmissionQueue::Ticket> ticket =
            queue.Admit(Clock::now() + slack);
        if (ticket.ok()) {
          served.fetch_add(1);
        } else {
          EXPECT_TRUE(ticket.status().code() ==
                          StatusCode::kDeadlineExceeded ||
                      ticket.status().code() ==
                          StatusCode::kResourceExhausted)
              << ticket.status();
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(served.load() + rejected.load(), 200u);
  AdmissionStats stats = queue.Stats();
  EXPECT_EQ(stats.admitted, served.load());
  EXPECT_EQ(stats.rejected_deadline + stats.rejected_capacity,
            rejected.load());
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.queue_depth, 0u);
}

}  // namespace
}  // namespace biorank::api
