#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "ingest/delta.h"
#include "storage/codec.h"
#include "util/file.h"

namespace biorank::storage {
namespace {

constexpr uint64_t kFp = 0xB10FA15E;

std::string TempLog(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string ReadAll(const std::string& path) {
  Result<std::string> bytes = util::ReadFileToString(path);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  return bytes.ok() ? bytes.value() : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(StorageWalTest, FreshLogAppendsAndReplaysInOrder) {
  std::string path = TempLog("wal_fresh.log");
  Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened.value().replay.records.empty());
  EXPECT_FALSE(opened.value().replay.torn_tail);
  Wal& wal = *opened.value().wal;

  Result<uint64_t> a = wal.Append(WalRecordType::kOpenSession, 7, "query");
  Result<uint64_t> b = wal.Append(WalRecordType::kApplyDelta, 7, "delta");
  Result<uint64_t> c = wal.Append(WalRecordType::kCloseSession, 7, "");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(c.value(), 3u);
  EXPECT_EQ(wal.last_lsn(), 3u);
  ASSERT_TRUE(wal.Sync().ok());

  Result<WalReplay> replay = ReadWal(path, kFp);
  ASSERT_TRUE(replay.ok()) << replay.status();
  ASSERT_EQ(replay.value().records.size(), 3u);
  EXPECT_EQ(replay.value().records[0].type, WalRecordType::kOpenSession);
  EXPECT_EQ(replay.value().records[0].session_id, 7u);
  EXPECT_EQ(replay.value().records[0].body, "query");
  EXPECT_EQ(replay.value().records[1].body, "delta");
  EXPECT_EQ(replay.value().records[2].type, WalRecordType::kCloseSession);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replay.value().records[i].lsn, i + 1);
  }
  std::remove(path.c_str());
}

TEST(StorageWalTest, ReopenContinuesLsnSequence) {
  std::string path = TempLog("wal_reopen.log");
  {
    Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        opened.value().wal->Append(WalRecordType::kApplyDelta, 1, "x").ok());
    ASSERT_TRUE(
        opened.value().wal->Append(WalRecordType::kApplyDelta, 1, "y").ok());
  }
  Result<Wal::OpenResult> reopened = Wal::Open(path, kFp);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value().replay.last_lsn, 2u);
  Result<uint64_t> next =
      reopened.value().wal->Append(WalRecordType::kApplyDelta, 1, "z");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 3u);
  std::remove(path.c_str());
}

TEST(StorageWalTest, TornTailTruncatesToLastCompleteRecord) {
  std::string path = TempLog("wal_torn.log");
  {
    Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(opened.value()
                      .wal->Append(WalRecordType::kApplyDelta, 1, "body")
                      .ok());
    }
  }
  // A crash mid-append leaves a partial frame: simulate with the prefix
  // of a real record.
  std::string intact = ReadAll(path);
  std::string partial =
      FrameWalRecord(6, WalRecordType::kApplyDelta, 1, "lost").substr(0, 9);
  WriteAll(path, intact + partial);

  Result<WalReplay> scanned = ReadWal(path, kFp);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_TRUE(scanned.value().torn_tail);
  EXPECT_EQ(scanned.value().truncated_bytes, partial.size());
  EXPECT_EQ(scanned.value().records.size(), 5u);
  EXPECT_EQ(scanned.value().last_lsn, 5u);

  // Open physically truncates; appends then land after record 5 and the
  // file reads back clean.
  Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened.value().replay.torn_tail);
  EXPECT_EQ(ReadAll(path), intact);
  Result<uint64_t> lsn =
      opened.value().wal->Append(WalRecordType::kApplyDelta, 1, "after");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 6u);
  opened.value().wal.reset();
  Result<WalReplay> clean = ReadWal(path, kFp);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean.value().torn_tail);
  EXPECT_EQ(clean.value().records.size(), 6u);
  std::remove(path.c_str());
}

TEST(StorageWalTest, BitFlipInLastRecordIsATornTailNotAnError) {
  std::string path = TempLog("wal_flip_tail.log");
  std::string file = WalFileHeader(kFp);
  file += FrameWalRecord(1, WalRecordType::kApplyDelta, 1, "aaaa");
  std::string last = FrameWalRecord(2, WalRecordType::kApplyDelta, 1, "bbbb");
  last[last.size() - 2] ^= 0x40;  // Flip a payload bit in the final record.
  file += last;
  WriteAll(path, file);

  Result<WalReplay> scanned = ReadWal(path, kFp);
  ASSERT_TRUE(scanned.ok()) << scanned.status();
  EXPECT_TRUE(scanned.value().torn_tail);
  EXPECT_EQ(scanned.value().records.size(), 1u);
  EXPECT_EQ(scanned.value().truncated_bytes, last.size());
  std::remove(path.c_str());
}

TEST(StorageWalTest, BitFlipMidFileIsTypedDataLoss) {
  std::string path = TempLog("wal_flip_mid.log");
  std::string file = WalFileHeader(kFp);
  std::string corrupt = FrameWalRecord(1, WalRecordType::kApplyDelta, 1,
                                       "the corrupted one");
  corrupt[corrupt.size() - 3] ^= 0x01;  // Payload bit flip, framing intact.
  file += corrupt;
  file += FrameWalRecord(2, WalRecordType::kApplyDelta, 1, "valid after");
  WriteAll(path, file);

  // A valid record *follows* the bad frame, so this cannot be a torn
  // tail: it must surface as data loss, not silent truncation.
  Result<WalReplay> scanned = ReadWal(path, kFp);
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kDataLoss);
  Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(StorageWalTest, StaleLsnIsRejected) {
  std::string path = TempLog("wal_stale_lsn.log");
  std::string file = WalFileHeader(kFp);
  file += FrameWalRecord(1, WalRecordType::kApplyDelta, 1, "one");
  file += FrameWalRecord(1, WalRecordType::kApplyDelta, 1, "one again");
  file += FrameWalRecord(2, WalRecordType::kApplyDelta, 1, "two");
  WriteAll(path, file);
  // The duplicate LSN breaks the monotone sequence mid-file (a complete
  // record follows it): typed corruption.
  Result<WalReplay> scanned = ReadWal(path, kFp);
  ASSERT_FALSE(scanned.ok());
  EXPECT_EQ(scanned.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(StorageWalTest, FingerprintMismatchIsFailedPrecondition) {
  std::string path = TempLog("wal_fp.log");
  {
    Result<Wal::OpenResult> opened = Wal::Open(path, kFp);
    ASSERT_TRUE(opened.ok());
  }
  Result<Wal::OpenResult> other = Wal::Open(path, kFp + 1);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(StorageWalTest, GroupFsyncBatchesByCount) {
  std::string path = TempLog("wal_fsync.log");
  WalOptions options;
  options.fsync_every_n = 4;
  Result<Wal::OpenResult> opened = Wal::Open(path, kFp, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Wal& wal = *opened.value().wal;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.Append(WalRecordType::kApplyDelta, 1, "b").ok());
  }
  // Appends 4 and 8 crossed the batch threshold; 9 and 10 are pending.
  EXPECT_EQ(wal.stats().syncs, 2u);
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.stats().syncs, 3u);
  ASSERT_TRUE(wal.Sync().ok());  // Nothing pending: no extra fsync.
  EXPECT_EQ(wal.stats().syncs, 3u);
  EXPECT_EQ(wal.stats().records, 10u);
  std::remove(path.c_str());
}

TEST(StorageWalTest, DeltaBodyRoundTripsThroughCodec) {
  ingest::EvidenceDelta delta;
  delta.add_nodes.push_back({0.75, "new-node", "AmiGO"});
  delta.reweight_edges.push_back({3, 0.5});
  delta.revise_source_priors.push_back({"AmiGO", 0.9});
  ByteWriter out;
  EncodeDelta(delta, out);

  ingest::EvidenceDelta back;
  ByteReader in(out.bytes());
  ASSERT_TRUE(DecodeDelta(in, back).ok());
  EXPECT_TRUE(in.AtEnd());
  ASSERT_EQ(back.add_nodes.size(), 1u);
  EXPECT_EQ(back.add_nodes[0].label, "new-node");
  EXPECT_EQ(back.add_nodes[0].entity_set, "AmiGO");
  EXPECT_EQ(back.add_nodes[0].p, 0.75);
  ASSERT_EQ(back.reweight_edges.size(), 1u);
  EXPECT_EQ(back.reweight_edges[0].edge, 3);
  ASSERT_EQ(back.revise_source_priors.size(), 1u);
  EXPECT_EQ(back.revise_source_priors[0].entity_set, "AmiGO");

  // A truncated body surfaces as typed data loss, never UB.
  std::string short_bytes = out.bytes().substr(0, out.bytes().size() - 4);
  ByteReader short_in(short_bytes);
  ingest::EvidenceDelta ignored;
  EXPECT_EQ(DecodeDelta(short_in, ignored).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace biorank::storage
