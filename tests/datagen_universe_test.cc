#include "datagen/protein_universe.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/evidence_model.h"
#include "datagen/go_ontology.h"
#include "datagen/scenario.h"
#include "util/rng.h"

namespace biorank {
namespace {

TEST(GoOntologyTest, GeneratesRequestedTermCount) {
  Rng rng(1);
  GoOntology ontology = GoOntology::Generate(50, rng);
  EXPECT_EQ(ontology.size(), 50);
}

TEST(GoOntologyTest, IdsAreUniqueAndWellFormed) {
  Rng rng(2);
  GoOntology ontology = GoOntology::Generate(200, rng);
  std::set<std::string> ids;
  for (int i = 0; i < ontology.size(); ++i) {
    const GoTerm& term = ontology.term(i);
    EXPECT_EQ(term.id.size(), 10u);  // "GO:" + 7 digits.
    EXPECT_EQ(term.id.substr(0, 3), "GO:");
    EXPECT_TRUE(ids.insert(term.id).second) << term.id;
    EXPECT_FALSE(term.name.empty());
  }
}

TEST(GoOntologyTest, IndexOfRoundTrips) {
  Rng rng(3);
  GoOntology ontology = GoOntology::Generate(40, rng);
  for (int i = 0; i < ontology.size(); ++i) {
    Result<int> index = ontology.IndexOf(ontology.term(i).id);
    ASSERT_TRUE(index.ok());
    EXPECT_EQ(index.value(), i);
  }
  EXPECT_FALSE(ontology.IndexOf("GO:9999999").ok());
}

TEST(UniverseTest, DefaultsMatchPaperScale) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  EXPECT_EQ(universe.well_studied().size(), 20u);   // Table 1.
  EXPECT_EQ(universe.hypothetical().size(), 11u);   // Table 3.
  EXPECT_GT(universe.num_proteins(), 100);
}

TEST(UniverseTest, DeterministicForSeed) {
  ProteinUniverse a = ProteinUniverse::Generate();
  ProteinUniverse b = ProteinUniverse::Generate();
  ASSERT_EQ(a.num_proteins(), b.num_proteins());
  for (int i = 0; i < a.num_proteins(); ++i) {
    EXPECT_EQ(a.protein(i).gene_symbol, b.protein(i).gene_symbol);
    EXPECT_EQ(a.protein(i).curated_functions,
              b.protein(i).curated_functions);
    EXPECT_EQ(a.protein(i).recent_functions, b.protein(i).recent_functions);
  }
}

TEST(UniverseTest, DifferentSeedsDiffer) {
  UniverseOptions options;
  options.seed = 999;
  ProteinUniverse a = ProteinUniverse::Generate();
  ProteinUniverse b = ProteinUniverse::Generate(options);
  bool any_difference = false;
  for (int i = 0; i < std::min(a.num_proteins(), b.num_proteins()); ++i) {
    if (a.protein(i).curated_functions != b.protein(i).curated_functions) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(UniverseTest, WellStudiedCuratedCountsInRange) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (int index : universe.well_studied()) {
    const Protein& protein = universe.protein(index);
    EXPECT_GE(static_cast<int>(protein.curated_functions.size()),
              universe.options().min_curated);
    EXPECT_LE(static_cast<int>(protein.curated_functions.size()),
              universe.options().max_curated);
  }
}

TEST(UniverseTest, HypotheticalProteinsHaveNoCuratedFunctions) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (int index : universe.hypothetical()) {
    const Protein& protein = universe.protein(index);
    EXPECT_TRUE(protein.curated_functions.empty());
    EXPECT_EQ(protein.expert_functions.size(), 1u);  // "generally one".
    EXPECT_EQ(protein.study_level, StudyLevel::kHypothetical);
  }
}

TEST(UniverseTest, RecentFunctionCountsMatchPaper) {
  // 3 proteins carrying 3 + 2 + 2 = 7 recently published functions.
  ProteinUniverse universe = ProteinUniverse::Generate();
  int holders = 0, total = 0;
  for (int index : universe.well_studied()) {
    const Protein& protein = universe.protein(index);
    if (!protein.recent_functions.empty()) {
      ++holders;
      total += static_cast<int>(protein.recent_functions.size());
    }
  }
  EXPECT_EQ(holders, 3);
  EXPECT_EQ(total, 7);
}

TEST(UniverseTest, RecentFunctionsAreDisjointFromCuration) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (int index : universe.well_studied()) {
    const Protein& protein = universe.protein(index);
    std::set<int> curated(protein.curated_functions.begin(),
                          protein.curated_functions.end());
    for (int go : protein.recent_functions) {
      EXPECT_EQ(curated.count(go), 0u);
    }
  }
}

TEST(UniverseTest, TrueFunctionsSupersetCuratedAndRecent) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (const Protein& protein : universe.proteins()) {
    std::set<int> true_set(protein.true_functions.begin(),
                           protein.true_functions.end());
    for (int go : protein.curated_functions) {
      EXPECT_EQ(true_set.count(go), 1u);
    }
    for (int go : protein.recent_functions) {
      EXPECT_EQ(true_set.count(go), 1u);
    }
    for (int go : protein.expert_functions) {
      EXPECT_EQ(true_set.count(go), 1u);
    }
  }
}

TEST(UniverseTest, FamilyMembersAreConsistent) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (int f = 0; f < universe.num_families(); ++f) {
    for (int member : universe.FamilyMembers(f)) {
      EXPECT_EQ(universe.protein(member).family, f);
    }
  }
}

TEST(UniverseTest, LookupBySymbolAndAccession) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  const Protein& protein = universe.protein(0);
  EXPECT_EQ(universe.FindProtein(protein.gene_symbol).value(), 0);
  EXPECT_EQ(universe.FindProtein(protein.accession).value(), 0);
  EXPECT_FALSE(universe.FindProtein("NO_SUCH_PROTEIN").ok());
}

TEST(UniverseTest, GeneSymbolsAreUnique) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  std::set<std::string> symbols;
  for (const Protein& protein : universe.proteins()) {
    EXPECT_TRUE(symbols.insert(protein.gene_symbol).second)
        << protein.gene_symbol;
  }
}

TEST(EvidenceModelTest, EValueRangesAreOrdered) {
  EvidenceModel model;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    double strong = model.SampleStrongHitEValue(rng);
    double true_hit = model.SampleTrueHitEValue(rng);
    double weak = model.SampleWeakHitEValue(rng);
    EXPECT_LT(strong, true_hit);
    EXPECT_LT(true_hit, weak);
  }
}

TEST(EvidenceModelTest, BackgroundStatusesAreWeakerOnAverage) {
  EvidenceModel model;
  Rng rng(8);
  double curated_sum = 0.0, background_sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    curated_sum += GeneStatusToPr(model.SampleCuratedStatus(rng));
    background_sum += GeneStatusToPr(model.SampleBackgroundStatus(rng));
  }
  EXPECT_GT(curated_sum / n, background_sum / n + 0.2);
}

TEST(ScenarioTest, CaseCountsMatchPaper) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  EXPECT_EQ(
      BuildScenarioCases(universe, ScenarioId::kScenario1WellKnown).size(),
      20u);
  EXPECT_EQ(
      BuildScenarioCases(universe, ScenarioId::kScenario2LessKnown).size(),
      3u);
  EXPECT_EQ(
      BuildScenarioCases(universe, ScenarioId::kScenario3Hypothetical).size(),
      11u);
}

TEST(ScenarioTest, GoldStandardsMatchProteinsGroundTruth) {
  ProteinUniverse universe = ProteinUniverse::Generate();
  for (const ScenarioCase& c :
       BuildScenarioCases(universe, ScenarioId::kScenario2LessKnown)) {
    EXPECT_EQ(c.gold_functions,
              universe.protein(c.protein_index).recent_functions);
  }
  for (const ScenarioCase& c :
       BuildScenarioCases(universe, ScenarioId::kScenario3Hypothetical)) {
    EXPECT_EQ(c.gold_functions,
              universe.protein(c.protein_index).expert_functions);
  }
}

TEST(ScenarioTest, NamesAreDistinct) {
  EXPECT_STRNE(ScenarioName(ScenarioId::kScenario1WellKnown),
               ScenarioName(ScenarioId::kScenario2LessKnown));
  EXPECT_STRNE(ScenarioName(ScenarioId::kScenario2LessKnown),
               ScenarioName(ScenarioId::kScenario3Hypothetical));
}

}  // namespace
}  // namespace biorank
