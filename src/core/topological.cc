#include "core/topological.h"

#include "core/graph_algo.h"

namespace biorank {

Result<std::vector<double>> InEdgeScores(const QueryGraph& query_graph) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  std::vector<double> scores(graph.node_capacity(), 0.0);
  for (NodeId i : graph.AliveNodes()) {
    scores[i] = static_cast<double>(graph.InDegree(i));
  }
  return scores;
}

Result<std::vector<double>> PathCountScores(const QueryGraph& query_graph) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  if (HasCycleReachableFrom(graph, query_graph.source)) {
    return Status::FailedPrecondition(
        "PathCount: cycle reachable from the query node makes path counts "
        "infinite");
  }

  std::vector<bool> reachable = ReachableFrom(graph, query_graph.source);
  std::vector<double> counts(graph.node_capacity(), 0.0);
  counts[query_graph.source] = 1.0;

  // Process the reachable sub-DAG in topological order via Kahn's
  // algorithm restricted to reachable nodes.
  std::vector<int> in_degree(graph.node_capacity(), 0);
  std::vector<NodeId> queue;
  for (NodeId i : graph.AliveNodes()) {
    if (!reachable[i]) continue;
    int degree = 0;
    graph.ForEachInEdge(i, [&](EdgeId e) {
      if (reachable[graph.edge(e).from]) ++degree;
    });
    in_degree[i] = degree;
    if (degree == 0) queue.push_back(i);
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId x = queue[head];
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      NodeId y = graph.edge(e).to;
      if (!reachable[y]) return;
      counts[y] += counts[x];  // Parallel edges each count as a path.
      if (--in_degree[y] == 0) queue.push_back(y);
    });
  }
  return counts;
}

}  // namespace biorank
