#include "serve/ranking_service.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "core/reliability_exact.h"
#include "core/reliability_mc.h"
#include "core/trial_bound.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace biorank::serve {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

RankingService::RankingService(RankingServiceOptions options)
    : options_(options), cache_(options.cache) {
  Result<int64_t> trials =
      RequiredMcTrials(options_.mc_epsilon, options_.mc_delta);
  mc_trials_ = trials.ok() ? trials.value() : 0;  // 0 => error per request.
  if (options_.registry != nullptr) {
    obs::Registry& reg = *options_.registry;
    metrics_.candidates = reg.GetCounter(
        "biorank_serve_candidates_total", "Answer candidates scheduled");
    metrics_.pruned = reg.GetCounter("biorank_serve_pruned_total",
                                     "Candidates pruned by the top-k cut");
    metrics_.bound_exact =
        reg.GetCounter("biorank_serve_bound_exact_total",
                       "Candidates resolved by closed bounds");
    metrics_.exact = reg.GetCounter("biorank_serve_exact_total",
                                    "Candidates resolved by factoring");
    metrics_.monte_carlo = reg.GetCounter(
        "biorank_serve_monte_carlo_total", "Candidates resolved by Monte Carlo");
    metrics_.mc_trials =
        reg.GetCounter("biorank_serve_mc_trials_total", "MC trials spent");
    metrics_.bounds_seconds = reg.GetHistogram(
        "biorank_serve_bounds_seconds",
        "Dedup + cache lookup + deterministic bounds phase latency");
    metrics_.mc_seconds = reg.GetHistogram(
        "biorank_serve_mc_seconds",
        "Exact-factoring / Monte Carlo resolve phase latency");
  }
}

Status RankingService::CanonicalizeTargets(
    const QueryGraph& graph, const std::vector<NodeId>& targets,
    const CanonicalizeOptions& canonicalize,
    std::vector<CanonicalCandidate>& out, const CsrSnapshot* graph_csr) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  const int max_parallelism = options_.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options_.num_threads;
  out.clear();
  out.resize(targets.size());
  std::vector<Status> status(targets.size());
  pool.ParallelFor(
      static_cast<int64_t>(targets.size()),
      [&](int, int64_t i) {
        Result<CanonicalCandidate> canonical = CanonicalizeCandidate(
            graph, targets[static_cast<size_t>(i)], canonicalize, graph_csr);
        if (canonical.ok()) {
          out[static_cast<size_t>(i)] = std::move(canonical.value());
        } else {
          status[static_cast<size_t>(i)] = canonical.status();
        }
      },
      max_parallelism);
  for (const Status& s : status) {
    BIORANK_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Result<TopKResult> RankingService::RankTopK(const QueryGraph& query_graph,
                                            int k) {
  return RankTopK(query_graph, query_graph.answers, k);
}

Result<TopKResult> RankingService::RankTopK(const QueryGraph& query_graph,
                                            const std::vector<NodeId>& targets,
                                            int k) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (k < 1) return Status::InvalidArgument("serve: k must be >= 1");
  if (mc_trials_ <= 0) {
    // Also checked in RankPrepared; here it precedes the phase-1 fan-out
    // so a misconfigured service fails in O(1), not O(answers).
    return Status::InvalidArgument(
        "serve: mc_epsilon must be in (0,1] and mc_delta in (0,1)");
  }
  const std::vector<NodeId>& answers = targets;
  if (&targets != &query_graph.answers) {
    BIORANK_RETURN_IF_ERROR(ValidateTargets(query_graph, targets));
  }

  // Phase 1 — canonicalize every candidate (pure per candidate, so the
  // fan-out is deterministic at any thread count). One flat snapshot of
  // the request graph serves every target's restriction traversal.
  std::vector<CanonicalCandidate> canonicals;
  {
    obs::SpanScope span(obs::CurrentTrace(), "serve.canonicalize");
    const CsrSnapshot request_csr = BuildCsrSnapshot(query_graph.graph);
    BIORANK_RETURN_IF_ERROR(CanonicalizeTargets(query_graph, answers,
                                                options_.canonicalize,
                                                canonicals, &request_csr));
    span.Counter("targets", static_cast<int64_t>(answers.size()));
  }

  std::vector<PreparedCandidate> prepared(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    prepared[i].node = answers[i];
    prepared[i].canonical = &canonicals[i];
  }
  return RankPrepared(prepared, k);
}

Status RankingService::ValidateTargets(const QueryGraph& graph,
                                       const std::vector<NodeId>& targets) {
  // A shard's (or anytime request's) slice must be a distinct subset of
  // the graph's answer set: anything else means the caller and the
  // materialized graph disagree, which would silently rank the wrong
  // universe.
  std::unordered_set<NodeId> answer_set(graph.answers.begin(),
                                        graph.answers.end());
  std::unordered_set<NodeId> seen;
  seen.reserve(targets.size());
  for (NodeId target : targets) {
    if (answer_set.find(target) == answer_set.end()) {
      return Status::InvalidArgument(
          "serve: ranking target " + std::to_string(target) +
          " is not an answer of the query graph");
    }
    if (!seen.insert(target).second) {
      return Status::InvalidArgument("serve: duplicate ranking target " +
                                     std::to_string(target));
    }
  }
  return Status::OK();
}

Status RankingService::BuildUniqueStates(
    const std::vector<PreparedCandidate>& candidates,
    std::vector<UniqueState>& uniques, std::vector<int>& unique_index,
    RequestStats& stats) {
  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  const int max_parallelism = options_.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options_.num_threads;

  // Phase 2 — dedup by canonical repr and look the unique keys up in the
  // cache (sequential: hit/miss accounting and LRU order stay
  // deterministic). Request-local duplicates count as hits — they are
  // served from the shared computation.
  uniques.clear();
  uniques.reserve(candidates.size());
  unique_index.assign(candidates.size(), -1);
  std::unordered_map<std::string_view, int> by_repr;
  by_repr.reserve(candidates.size());
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const PreparedCandidate& c = candidates[ci];
    auto [it, inserted] = by_repr.try_emplace(
        std::string_view(c.canonical->key.repr),
        static_cast<int>(uniques.size()));
    unique_index[ci] = it->second;
    if (!inserted) {
      ++stats.cache_hits;
      continue;
    }
    UniqueState u;
    u.canonical = c.canonical;
    if (options_.enable_cache) {
      std::optional<CacheEntry> got = cache_.Get(c.canonical->key);
      if (got.has_value()) {
        ++stats.cache_hits;
        u.entry = *got;
        u.have_bounds = true;
        if (u.entry.has_value) u.resolution = Resolution::kCacheValue;
      } else {
        ++stats.cache_misses;
      }
    } else {
      ++stats.cache_misses;
    }
    uniques.push_back(std::move(u));
  }

  // Phase 3 — deterministic bounds for every unique key that has none
  // (pure per key; parallel).
  std::vector<int> need_bounds;
  for (size_t i = 0; i < uniques.size(); ++i) {
    if (!uniques[i].have_bounds) need_bounds.push_back(static_cast<int>(i));
  }
  pool.ParallelFor(
      static_cast<int64_t>(need_bounds.size()),
      [&](int, int64_t j) {
        UniqueState& u =
            uniques[static_cast<size_t>(need_bounds[static_cast<size_t>(j)])];
        Result<ReliabilityBounds> bounds = BoundReliability(
            u.canonical->canonical, u.canonical->target, options_.bounds);
        if (!bounds.ok()) {
          u.status = bounds.status();
          return;
        }
        u.entry.lower = bounds.value().lower;
        u.entry.upper = bounds.value().upper;
        u.have_bounds = true;
      },
      max_parallelism);
  for (const UniqueState& u : uniques) {
    BIORANK_RETURN_IF_ERROR(u.status);
  }
  return Status::OK();
}

double RankingService::ClassifySurvivors(const std::vector<int>& unique_index,
                                         std::vector<UniqueState>& uniques,
                                         int k, RequestStats& stats,
                                         std::vector<int>& survivors) {
  // Phase 4 — the top-k cut: the k-th largest per-candidate lower bound
  // (resolved values stand in as tight lowers). Any candidate whose
  // upper bound is strictly below this provably cannot make the top k.
  std::vector<double> lowers;
  lowers.reserve(unique_index.size());
  for (int ui : unique_index) {
    const UniqueState& u = uniques[static_cast<size_t>(ui)];
    lowers.push_back(u.entry.has_value ? u.entry.value : u.entry.lower);
  }
  std::nth_element(lowers.begin(), lowers.begin() + (k - 1), lowers.end(),
                   std::greater<double>());
  const double threshold = lowers[static_cast<size_t>(k - 1)];

  // Phase 5 — classify the unresolved uniques: prune below the cut,
  // close tight bounds for free, and queue the rest for exact/MC work.
  for (size_t i = 0; i < uniques.size(); ++i) {
    UniqueState& u = uniques[i];
    if (u.entry.has_value) continue;  // Cached value: nothing to do.
    if (u.entry.upper < threshold) {
      u.resolution = Resolution::kPruned;
      ++stats.pruned;
      continue;
    }
    if (u.entry.upper - u.entry.lower <= options_.bound_resolve_epsilon) {
      u.entry.has_value = true;
      u.entry.value = u.entry.lower;
      u.entry.exact = true;
      u.resolution = Resolution::kBoundExact;
      ++stats.bound_exact;
      continue;
    }
    // Mark the survivor as an open bracket now: an anytime caller can
    // read the state before any exact/MC work ran, and a default-value
    // resolution would make it indistinguishable from pruned.
    u.resolution = Resolution::kRefining;
    survivors.push_back(static_cast<int>(i));
  }
  return threshold;
}

Status RankingService::TryResolveExact(UniqueState& u) {
  if (u.entry.has_value || u.exact_attempted) return Status::OK();
  // A partial MC tally means factoring already failed (or was out of
  // budget) when this key first survived; stay on the MC path rather
  // than re-paying the factoring budget every increment.
  if (u.entry.trials > 0) return Status::OK();
  const QueryGraph& graph = u.canonical->canonical;
  if (graph.graph.num_edges() > options_.exact_max_edges) return Status::OK();
  u.exact_attempted = true;
  FactoringOptions factoring;
  factoring.max_calls = options_.exact_max_calls;
  Result<double> exact =
      ExactReliabilityFactoring(graph, u.canonical->target, factoring);
  if (exact.ok()) {
    u.entry.has_value = true;
    u.entry.value = exact.value();
    u.entry.exact = true;
    u.resolution = Resolution::kExact;
    return Status::OK();
  }
  if (exact.status().code() != StatusCode::kFailedPrecondition) {
    return exact.status();
  }
  // Too complex to factor within budget: the caller falls through to MC.
  return Status::OK();
}

Status RankingService::AdvanceMonteCarlo(UniqueState& u,
                                         int64_t trial_budget) {
  if (u.entry.has_value) return Status::OK();
  McOptions mc;
  mc.trials = mc_trials_;
  mc.seed = DeriveStreamSeed(options_.seed, u.canonical->key.hash);
  mc.shard_trials = options_.mc_shard_trials;
  mc.num_threads = options_.num_threads;
  mc.pool = options_.pool;
  Result<std::vector<int64_t>> plan =
      PlanTrialShards(mc.trials, mc.shard_trials);
  if (!plan.ok()) return plan.status();
  const std::vector<int64_t>& shards = plan.value();
  const int64_t num_shards = static_cast<int64_t>(shards.size());

  // Resume position: the shard prefix covering the entry's trials. The
  // serve layer only ever writes whole-prefix trial counts; an entry
  // that does not align (a foreign writer) restarts from zero rather
  // than double-counting a shard.
  int64_t shard_begin = 0;
  int64_t covered = 0;
  while (shard_begin < num_shards && covered < u.entry.trials) {
    covered += shards[shard_begin++];
  }
  if (covered != u.entry.trials) {
    u.entry.trials = 0;
    u.entry.tally = 0;
    shard_begin = 0;
  }

  int64_t shard_end = shard_begin;
  if (trial_budget <= 0) {
    shard_end = num_shards;
  } else {
    int64_t taken = 0;
    while (shard_end < num_shards && taken < trial_budget) {
      taken += shards[shard_end++];
    }
  }

  if (shard_end > shard_begin) {
    // Pack the canonical residue once and simulate on the flat arrays;
    // the tallies stay a pure function of (canonical key, seed, range).
    Result<CsrQuerySnapshot> snapshot =
        BuildCsrQuerySnapshot(u.canonical->canonical);
    if (!snapshot.ok()) return snapshot.status();
    Result<McShardTallies> tallies =
        TallyReliabilityMcShards(snapshot.value(), mc, shard_begin, shard_end);
    if (!tallies.ok()) return tallies.status();
    u.entry.tally +=
        tallies.value().counts[static_cast<size_t>(u.canonical->target)];
    u.entry.trials += tallies.value().trials;
    u.trials_spent += tallies.value().trials;
  }

  if (u.entry.trials >= mc_trials_) {
    double value = static_cast<double>(u.entry.tally) /
                   static_cast<double>(mc_trials_);
    // The deterministic bounds are ground truth; clamping keeps MC
    // noise from ever contradicting a pruning decision.
    value = std::min(std::max(value, u.entry.lower), u.entry.upper);
    u.entry.has_value = true;
    u.entry.value = value;
    u.entry.exact = false;
    u.resolution = Resolution::kMonteCarlo;
  } else {
    u.resolution = Resolution::kRefining;
  }
  return Status::OK();
}

void RankingService::PublishEntries(const std::vector<UniqueState>& uniques) {
  if (!options_.enable_cache) return;
  for (const UniqueState& u : uniques) {
    if (u.resolution == Resolution::kCacheValue) continue;  // Unchanged.
    cache_.Put(u.canonical->key, u.entry);
  }
}

Result<TopKResult> RankingService::RankPrepared(
    const std::vector<PreparedCandidate>& candidates, int k) {
  if (k < 1) return Status::InvalidArgument("serve: k must be >= 1");
  if (mc_trials_ <= 0) {
    return Status::InvalidArgument(
        "serve: mc_epsilon must be in (0,1] and mc_delta in (0,1)");
  }
  for (const PreparedCandidate& c : candidates) {
    if (c.canonical == nullptr) {
      return Status::InvalidArgument(
          "serve: prepared candidate without a canonicalization");
    }
  }

  TopKResult result;
  RequestStats& stats = result.stats;
  stats.candidates = static_cast<int>(candidates.size());
  if (candidates.empty()) return result;
  k = std::min(k, static_cast<int>(candidates.size()));

  ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  const int max_parallelism = options_.num_threads == 0
                                  ? ThreadPool::kUnlimitedParallelism
                                  : options_.num_threads;

  // Phases 2–3 — dedup, cache lookup, deterministic bounds.
  std::vector<UniqueState> uniques;
  std::vector<int> unique_index;
  {
    obs::SpanScope span(obs::CurrentTrace(), "serve.cache_bounds");
    const auto bounds_start = std::chrono::steady_clock::now();
    BIORANK_RETURN_IF_ERROR(
        BuildUniqueStates(candidates, uniques, unique_index, stats));
    if (metrics_.bounds_seconds != nullptr) {
      metrics_.bounds_seconds->Observe(SecondsSince(bounds_start));
    }
    span.Counter("cache_hits", stats.cache_hits);
    span.Counter("cache_misses", stats.cache_misses);
  }

  // Phases 4–5 — top-k cut and classification.
  std::vector<int> survivors;
  {
    obs::SpanScope span(obs::CurrentTrace(), "serve.prune");
    ClassifySurvivors(unique_index, uniques, k, stats, survivors);
    span.Counter("pruned", stats.pruned);
    span.Counter("bound_exact", stats.bound_exact);
    span.Counter("survivors", static_cast<int64_t>(survivors.size()));
  }

  // Phase 6 — resolve the survivors: factoring on small reduced
  // residues, Monte Carlo to convergence on the canonical-hash stream
  // otherwise. Both are pure functions of the canonical key, so fan-out
  // order is irrelevant; the MC seed never depends on request or
  // candidate order. A survivor carrying a partial anytime tally resumes
  // at its next shard — the remaining shards complete the same integer
  // sum the from-scratch path computes, so the value is bit-identical.
  {
    // The fan-out runs on pool threads, which carry no thread-local
    // trace binding; per-survivor spans attach to the resolve span by
    // explicit parent index instead (the Trace itself is mutex-guarded).
    obs::SpanScope resolve_span(obs::CurrentTrace(), "serve.resolve");
    obs::Trace* trace = obs::CurrentTrace();
    const int resolve_parent = resolve_span.index();
    const auto mc_start = std::chrono::steady_clock::now();
    pool.ParallelFor(
        static_cast<int64_t>(survivors.size()),
        [&](int, int64_t j) {
          UniqueState& u =
              uniques[static_cast<size_t>(survivors[static_cast<size_t>(j)])];
          obs::SpanScope span(trace, "serve.mc_shards", resolve_parent);
          Status st = TryResolveExact(u);
          if (!st.ok()) {
            u.status = st;
            return;
          }
          if (u.entry.has_value) {
            span.Counter("exact", 1);
            return;
          }
          st = AdvanceMonteCarlo(u, /*trial_budget=*/0);
          if (!st.ok()) {
            u.status = st;
            return;
          }
          span.Counter("trials", u.trials_spent);
        },
        max_parallelism);
    if (metrics_.mc_seconds != nullptr && !survivors.empty()) {
      metrics_.mc_seconds->Observe(SecondsSince(mc_start));
    }
    resolve_span.Counter("survivors", static_cast<int64_t>(survivors.size()));
  }
  for (const UniqueState& u : uniques) {
    if (!u.status.ok()) return u.status;
  }
  for (int index : survivors) {
    const UniqueState& u = uniques[static_cast<size_t>(index)];
    if (u.resolution == Resolution::kExact) {
      ++stats.exact;
    } else {
      ++stats.monte_carlo;
      stats.mc_trials += u.trials_spent;
    }
  }

  // Phase 7 — publish to the cache in unique order (sequential, so the
  // cache's LRU state is a deterministic function of the request
  // sequence). Pruned keys publish their bounds: the next request skips
  // straight to the prune gate.
  {
    obs::SpanScope span(obs::CurrentTrace(), "serve.publish");
    PublishEntries(uniques);
  }

  if (metrics_.candidates != nullptr) {
    metrics_.candidates->Add(static_cast<uint64_t>(stats.candidates));
    metrics_.pruned->Add(static_cast<uint64_t>(stats.pruned));
    metrics_.bound_exact->Add(static_cast<uint64_t>(stats.bound_exact));
    metrics_.exact->Add(static_cast<uint64_t>(stats.exact));
    metrics_.monte_carlo->Add(static_cast<uint64_t>(stats.monte_carlo));
    metrics_.mc_trials->Add(static_cast<uint64_t>(stats.mc_trials));
  }

  // Phase 8 — rank the resolved candidates and truncate to k.
  for (size_t ci = 0; ci < candidates.size(); ++ci) {
    const UniqueState& u = uniques[static_cast<size_t>(unique_index[ci])];
    if (!u.entry.has_value) continue;  // Pruned: provably outside top k.
    RankedCandidate ranked;
    ranked.node = candidates[ci].node;
    ranked.reliability = u.entry.value;
    ranked.lower = u.entry.exact ? u.entry.value : u.entry.lower;
    ranked.upper = u.entry.exact ? u.entry.value : u.entry.upper;
    ranked.exact = u.entry.exact;
    ranked.resolution = u.resolution;
    result.top.push_back(ranked);
  }
  std::sort(result.top.begin(), result.top.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return RanksBefore(a, b);
            });
  if (static_cast<int>(result.top.size()) > k) result.top.resize(k);
  return result;
}

size_t RankingService::OnDelta(const std::vector<CanonicalKey>& stale_keys) {
  return cache_.InvalidateKeys(stale_keys);
}

}  // namespace biorank::serve
