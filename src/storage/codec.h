// Byte-level encode/decode helpers for the durability layer: a small
// bounds-checked binary codec (little-endian fixed-width integers,
// bit-exact doubles, length-prefixed strings) plus the wire encodings of
// the two payloads the WAL carries — EvidenceDelta and ExploratoryQuery.
// Every decode failure is a typed kDataLoss, never an abort: corrupt
// bytes are an operational condition of this layer, not a bug.

#ifndef BIORANK_STORAGE_CODEC_H_
#define BIORANK_STORAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ingest/delta.h"
#include "integrate/exploratory_query.h"
#include "util/status.h"

namespace biorank::storage {

/// Appends fixed-width little-endian values and length-prefixed strings
/// to a growing byte buffer. Doubles are serialized by bit pattern
/// (memcpy of the IEEE-754 representation), so a round trip is
/// bit-exact — the property the bit-identity recovery contract rests on.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI32(int32_t v) { PutFixed(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }
  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.append(s);
  }
  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& bytes() const { return buf_; }
  std::string&& TakeBytes() { return std::move(buf_); }

 private:
  template <typename T>
  void PutFixed(T v) {
    char out[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    buf_.append(out, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked reader over a byte buffer. Every Get* returns a typed
/// kDataLoss when the buffer is short; decoders propagate it upward so a
/// truncated or bit-flipped file surfaces as Status, never as UB.
class ByteReader {
 public:
  ByteReader(const void* data, size_t n)
      : data_(static_cast<const unsigned char*>(data)), size_(n) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  Status GetU8(uint8_t& v) {
    if (pos_ + 1 > size_) return Short("u8");
    v = data_[pos_++];
    return Status::OK();
  }
  Status GetU32(uint32_t& v) { return GetFixed(v); }
  Status GetU64(uint64_t& v) { return GetFixed(v); }
  Status GetI32(int32_t& v) {
    uint32_t raw = 0;
    BIORANK_RETURN_IF_ERROR(GetFixed(raw));
    v = static_cast<int32_t>(raw);
    return Status::OK();
  }
  Status GetI64(int64_t& v) {
    uint64_t raw = 0;
    BIORANK_RETURN_IF_ERROR(GetFixed(raw));
    v = static_cast<int64_t>(raw);
    return Status::OK();
  }
  Status GetDouble(double& v) {
    uint64_t bits = 0;
    BIORANK_RETURN_IF_ERROR(GetFixed(bits));
    std::memcpy(&v, &bits, sizeof(v));
    return Status::OK();
  }
  /// Copies exactly `n` raw bytes into `dest` (the bulk array path of
  /// the snapshot codec).
  Status GetBytesInto(void* dest, size_t n) {
    if (n > Remaining()) return Short("raw bytes");
    std::memcpy(dest, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status GetString(std::string& s) {
    uint64_t n = 0;
    BIORANK_RETURN_IF_ERROR(GetU64(n));
    if (n > Remaining()) return Short("string body");
    s.assign(reinterpret_cast<const char*>(data_ + pos_),
             static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// Reads a length-prefixed count, refusing anything the remaining
  /// bytes cannot possibly hold (`min_element_bytes` per element) — the
  /// guard that keeps a bit-flipped length from driving a huge resize.
  Status GetCount(uint64_t& n, size_t min_element_bytes) {
    BIORANK_RETURN_IF_ERROR(GetU64(n));
    if (min_element_bytes > 0 && n > Remaining() / min_element_bytes) {
      return Status::DataLoss("implausible element count in stream");
    }
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Status GetFixed(T& v) {
    if (pos_ + sizeof(T) > size_) return Short("fixed int");
    v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Short(const char* what) {
    return Status::DataLoss(std::string("byte stream truncated reading ") +
                            what);
  }

  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// EvidenceDelta wire form (all six op groups, fixed order).
void EncodeDelta(const ingest::EvidenceDelta& delta, ByteWriter& out);
Status DecodeDelta(ByteReader& in, ingest::EvidenceDelta& delta);

/// ExploratoryQuery wire form (the payload of a WAL open-session record).
void EncodeQuery(const ExploratoryQuery& query, ByteWriter& out);
Status DecodeQuery(ByteReader& in, ExploratoryQuery& query);

}  // namespace biorank::storage

#endif  // BIORANK_STORAGE_CODEC_H_
