#include "schema/reducibility.h"

#include <map>
#include <set>

namespace biorank {

namespace {

bool IsDownwardType(Cardinality c) {
  return c == Cardinality::kOneToMany || c == Cardinality::kOneToOne;
}

bool IsUpwardType(Cardinality c) {
  return c == Cardinality::kManyToOne || c == Cardinality::kOneToOne;
}

/// Detects a directed cycle among the given relationships.
bool HasDirectedCycle(const std::vector<RelationshipDef>& rels) {
  std::map<std::string, std::vector<std::string>> adjacency;
  std::set<std::string> nodes;
  for (const RelationshipDef& r : rels) {
    adjacency[r.from].push_back(r.to);
    nodes.insert(r.from);
    nodes.insert(r.to);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black.
  // Iterative DFS per component.
  for (const std::string& start : nodes) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> stack = {{start, 0}};
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      auto& next_nodes = adjacency[node];
      if (cursor >= next_nodes.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string& next = next_nodes[cursor++];
      if (color[next] == 1) return true;
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }
  return false;
}

bool IsForest(const std::vector<RelationshipDef>& rels) {
  std::map<std::string, int> in_degree;
  for (const RelationshipDef& r : rels) {
    if (++in_degree[r.to] > 1) return false;
  }
  return !HasDirectedCycle(rels);
}

}  // namespace

bool IsOneToManyForest(const ErSchema& schema) {
  for (const RelationshipDef& r : schema.relationships()) {
    if (!IsDownwardType(r.cardinality)) return false;
  }
  return IsForest(schema.relationships());
}

ReducibilityResult CheckSchemaReducibility(const ErSchema& schema,
                                           const CompositionOracle& oracle) {
  ReducibilityResult result;
  // Mutable working copy of the relationship multigraph.
  std::vector<RelationshipDef> rels = schema.relationships();
  std::set<std::string> removed_sets;

  auto is_tree_base_case = [&]() {
    for (const RelationshipDef& r : rels) {
      if (!IsDownwardType(r.cardinality)) return false;
    }
    return IsForest(rels);
  };

  int guard = static_cast<int>(schema.entity_sets().size()) + 1;
  while (guard-- > 0) {
    if (is_tree_base_case()) {
      result.reducible = true;
      result.trace.push_back("base case: [1:n] forest");
      return result;
    }
    // Look for a contractible entity set P (Theorem 3.2 part B).
    bool contracted = false;
    for (const EntitySetDef& entity : schema.entity_sets()) {
      const std::string& name = entity.name;
      if (removed_sets.count(name) > 0) continue;
      const RelationshipDef* incoming = nullptr;
      const RelationshipDef* outgoing = nullptr;
      int in_count = 0, out_count = 0;
      bool self_loop = false;
      for (const RelationshipDef& r : rels) {
        if (r.from == name && r.to == name) self_loop = true;
        if (r.to == name) {
          ++in_count;
          incoming = &r;
        }
        if (r.from == name) {
          ++out_count;
          outgoing = &r;
        }
      }
      if (self_loop || in_count != 1 || out_count != 1) continue;
      if (!IsDownwardType(incoming->cardinality)) continue;
      if (!IsUpwardType(outgoing->cardinality)) continue;
      Cardinality composed = oracle.Resolve(*incoming, *outgoing);
      if (composed == Cardinality::kManyToMany) continue;

      // Contract: remove P with its two relationships, add Q o Q'.
      RelationshipDef fused;
      fused.name = incoming->name + "*" + outgoing->name;
      fused.from = incoming->from;
      fused.to = outgoing->to;
      fused.cardinality = composed;
      fused.qs = incoming->qs * outgoing->qs;
      result.trace.push_back("contract " + name + ": " + incoming->name +
                             " o " + outgoing->name + " = " +
                             CardinalityToString(composed));
      std::vector<RelationshipDef> next;
      for (const RelationshipDef& r : rels) {
        if (r.name != incoming->name && r.name != outgoing->name) {
          next.push_back(r);
        }
      }
      next.push_back(fused);
      rels = std::move(next);
      removed_sets.insert(name);
      contracted = true;
      break;
    }
    if (!contracted) {
      result.reducible = false;
      result.trace.push_back(
          "stuck: no contractible entity set and not a [1:n] forest");
      return result;
    }
  }
  result.reducible = false;
  result.trace.push_back("internal: contraction guard exhausted");
  return result;
}

}  // namespace biorank
