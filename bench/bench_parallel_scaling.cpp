// Parallel scaling of the Monte Carlo reliability engine on the Figure 7
// workload (the 20 scenario-1 query graphs): wall time, trials/sec, and
// speedup vs the single-thread path, swept over 1/2/4/8 threads but
// clamped to std::thread::hardware_concurrency() — timing an
// oversubscribed pool only produces misleading ≈1x "speedup" rows on
// small machines (a 1-core container would otherwise report four
// identical sweep points). The clamp is recorded in the JSON
// (hardware_concurrency, thread_sweep_clamped, threads_swept) so the CI
// perf-trend job can tell a clamped sweep from a regression. The
// bit-identical determinism check still runs at up to 8 threads
// regardless of the clamp: correctness must hold oversubscribed too.
//
// Expected shape: near-linear speedup up to the physical core count
// (trials are embarrassingly parallel; the only serial work is the final
// count reduction).

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/reliability_mc.h"
#include "integrate/scenario_harness.h"
#include "util/parallel.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

/// One timed pass: MC reliability for every query at the given
/// parallelism. Returns concatenated scores for the determinism check.
std::vector<double> RunAllQueries(const std::vector<ScenarioQuery>& queries,
                                  int64_t trials, ThreadPool& pool,
                                  McOptions::Backend backend =
                                      McOptions::Backend::kCsrSnapshot) {
  std::vector<double> all_scores;
  for (const ScenarioQuery& query : queries) {
    McOptions mc;
    mc.trials = trials;
    mc.seed = 42;
    mc.pool = &pool;
    mc.backend = backend;
    Result<McEstimate> estimate = EstimateReliabilityMc(query.graph, mc);
    if (!estimate.ok()) {
      std::cerr << estimate.status() << "\n";
      std::exit(1);
    }
    all_scores.insert(all_scores.end(), estimate.value().scores.begin(),
                      estimate.value().scores.end());
  }
  return all_scores;
}

}  // namespace

int main() {
  const int reps = bench::Repetitions(3);
  const int64_t trials = 20000;
  std::cout << "=== Parallel scaling: MC reliability on the Fig. 7 workload"
            << " (" << reps << " passes, " << trials
            << " trials/graph) ===\n\n";

  bench::WallTimer total_timer;
  api::Server server;
  const ScenarioHarness& harness = server.harness();
  Result<std::vector<ScenarioQuery>> queries =
      harness.BuildQueries(ScenarioId::kScenario1WellKnown);
  if (!queries.ok()) {
    std::cerr << queries.status() << "\n";
    return 1;
  }
  const int64_t total_trials =
      trials * static_cast<int64_t>(queries.value().size()) * reps;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep;
  bool clamped = false;
  for (int threads : {1, 2, 4, 8}) {
    if (threads == 1 || static_cast<unsigned>(threads) <= hw) {
      sweep.push_back(threads);
    } else {
      clamped = true;
    }
  }

  TextTable table({"threads", "wall s", "Mtrials/s", "speedup vs 1"});
  bench::JsonReport report("parallel_scaling");
  double single_thread_s = 0.0;
  double speedup_at_4 = 0.0;
  bool deterministic = true;
  std::vector<double> reference_scores;

  for (int threads : sweep) {
    ThreadPool pool(threads - 1);
    // Warm pass: pages in the graphs and populates per-slot scratch. It
    // doubles as this thread count's point on the bit-identity ladder
    // (1 thread runs first, so the reference exists before comparisons).
    std::vector<double> scores =
        RunAllQueries(queries.value(), trials, pool);
    if (threads == 1) {
      reference_scores = scores;
    } else if (scores != reference_scores) {
      deterministic = false;
    }

    bench::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
      RunAllQueries(queries.value(), trials, pool);
    }
    double seconds = timer.Seconds();
    if (threads == 1) single_thread_s = seconds;
    double speedup = single_thread_s > 0.0 ? single_thread_s / seconds : 0.0;
    if (threads == 4) speedup_at_4 = speedup;
    double trials_per_sec =
        seconds > 0.0 ? static_cast<double>(total_trials) / seconds : 0.0;

    table.AddRow({std::to_string(threads), FormatDouble(seconds, 3),
                  FormatDouble(trials_per_sec / 1e6, 2),
                  FormatDouble(speedup, 2)});
    report.AddRow({{"threads", threads},
                   {"wall_time_s", seconds},
                   {"trials_per_sec", trials_per_sec},
                   {"speedup_vs_1thread", speedup}});
  }

  // Ladder points the clamped timed sweep skipped: bit-identity must
  // hold oversubscribed too (clamping is a timing concern only).
  for (int threads : {2, 4, 8}) {
    if (std::find(sweep.begin(), sweep.end(), threads) != sweep.end()) {
      continue;
    }
    ThreadPool pool(threads - 1);
    if (RunAllQueries(queries.value(), trials, pool) != reference_scores) {
      deterministic = false;
    }
  }
  table.Print(std::cout);

  // CSR-vs-pointer head-to-head at 1 thread: the seed-era pointer path
  // is kept verbatim as the reference backend, so this measures exactly
  // what the flat snapshot bought — and asserts that both backends flip
  // the same coins (bit-identical concatenated scores).
  double csr_speedup = 0.0;
  bool csr_bit_identical = true;
  {
    ThreadPool pool(0);
    std::vector<double> pointer_scores = RunAllQueries(
        queries.value(), trials, pool, McOptions::Backend::kPointerView);
    csr_bit_identical = pointer_scores == reference_scores;
    bench::WallTimer timer;
    for (int rep = 0; rep < reps; ++rep) {
      RunAllQueries(queries.value(), trials, pool,
                    McOptions::Backend::kPointerView);
    }
    double pointer_s = timer.Seconds();
    csr_speedup =
        single_thread_s > 0.0 ? pointer_s / single_thread_s : 0.0;
    double pointer_trials_per_sec =
        pointer_s > 0.0 ? static_cast<double>(total_trials) / pointer_s : 0.0;
    report.SetMetric("pointer_trials_per_sec", pointer_trials_per_sec);
    report.SetMetric("csr_speedup", csr_speedup);
    report.SetMetric("csr_bit_identical", csr_bit_identical);
    std::cout << "\nCSR snapshot vs pointer view (1 thread): "
              << FormatDouble(csr_speedup, 2) << "x, scores "
              << (csr_bit_identical ? "bit-identical"
                                    : "NOT IDENTICAL (BUG)")
              << ".\n";
  }

  std::cout << "\nDeterminism: scores at 2/4/8 threads are "
            << (deterministic ? "bit-identical" : "NOT IDENTICAL (BUG)")
            << " to the single-thread path.\n"
            << "Hardware concurrency: " << hw
            << (clamped ? " (timed sweep clamped to it)" : "") << ".\n";

  report.SetThreads(sweep.back());
  report.SetWallTime(total_timer.Seconds());
  report.SetMetric("trials_per_graph", trials);
  report.SetMetric("graphs",
                   static_cast<int64_t>(queries.value().size()));
  report.SetMetric("passes", reps);
  // Only meaningful when 4 real cores exist; absent on clamped sweeps so
  // downstream tooling cannot mistake an oversubscribed ≈1x for data.
  if (std::find(sweep.begin(), sweep.end(), 4) != sweep.end()) {
    report.SetMetric("speedup_at_4_threads", speedup_at_4);
  }
  report.SetMetric("deterministic_across_threads", deterministic);
  report.SetMetric("hardware_concurrency", static_cast<int64_t>(hw));
  report.SetMetric("thread_sweep_clamped", clamped);
  report.SetMetric("threads_swept", static_cast<int64_t>(sweep.size()));
  report.SetMetric("max_threads_timed", sweep.back());
  Status write_status = report.Write();
  return deterministic && csr_bit_identical && write_status.ok() ? 0 : 1;
}
