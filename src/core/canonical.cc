#include "core/canonical.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/graph_algo.h"
#include "util/rng.h"

namespace biorank {

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 14695981039346656037ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Order-sensitive 64-bit combine built on SplitMix64. Colors are only an
/// ordering device — the canonical repr is a full serialization — so a
/// hash collision can cost a cache miss but never a wrong key.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return SplitMix64Next(state);
}

constexpr uint8_t kRoleSource = 1;
constexpr uint8_t kRoleTarget = 2;

/// Dense, label-free view of the alive part of a query graph.
struct LabelView {
  int n = 0;
  std::vector<double> p;
  std::vector<uint64_t> p_bits;
  std::vector<uint8_t> role;
  struct Edge {
    int from = 0;
    int to = 0;
    double q = 0.0;
    uint64_t q_bits = 0;
  };
  std::vector<Edge> edges;
  std::vector<std::vector<int>> out;
  std::vector<std::vector<int>> in;
};

LabelView BuildView(const QueryGraph& query_graph) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  LabelView view;
  std::vector<int> dense(graph.node_capacity(), -1);
  for (NodeId id : graph.AliveNodes()) {
    dense[id] = view.n++;
    const GraphNode& node = graph.node(id);
    view.p.push_back(node.p);
    view.p_bits.push_back(DoubleBits(node.p));
    view.role.push_back(0);
  }
  view.role[dense[query_graph.source]] |= kRoleSource;
  for (NodeId t : query_graph.answers) view.role[dense[t]] |= kRoleTarget;
  view.out.resize(view.n);
  view.in.resize(view.n);
  for (EdgeId e : graph.AliveEdges()) {
    const GraphEdge& edge = graph.edge(e);
    LabelView::Edge dense_edge;
    dense_edge.from = dense[edge.from];
    dense_edge.to = dense[edge.to];
    dense_edge.q = edge.q;
    dense_edge.q_bits = DoubleBits(edge.q);
    int index = static_cast<int>(view.edges.size());
    view.edges.push_back(dense_edge);
    view.out[dense_edge.from].push_back(index);
    view.in[dense_edge.to].push_back(index);
  }
  return view;
}

int CountClasses(const std::vector<uint64_t>& colors) {
  std::vector<uint64_t> sorted = colors;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<int>(sorted.size());
}

/// Weisfeiler-Lehman color refinement: each round folds the sorted
/// multisets of (edge q, neighbor color) signatures — out- and in-edges
/// separately — into every node's color, until the partition stops
/// splitting.
void Refine(const LabelView& view, std::vector<uint64_t>& colors) {
  int classes = CountClasses(colors);
  std::vector<uint64_t> next(colors.size());
  std::vector<uint64_t> signature;
  for (int round = 0; round < view.n; ++round) {
    for (int i = 0; i < view.n; ++i) {
      uint64_t h = Mix(colors[static_cast<size_t>(i)], 0xA1);
      signature.clear();
      for (int e : view.out[i]) {
        signature.push_back(
            Mix(view.edges[e].q_bits, colors[view.edges[e].to]));
      }
      std::sort(signature.begin(), signature.end());
      for (uint64_t s : signature) h = Mix(h, s);
      h = Mix(h, 0xB2);
      signature.clear();
      for (int e : view.in[i]) {
        signature.push_back(
            Mix(view.edges[e].q_bits, colors[view.edges[e].from]));
      }
      std::sort(signature.begin(), signature.end());
      for (uint64_t s : signature) h = Mix(h, s);
      next[static_cast<size_t>(i)] = h;
    }
    colors.swap(next);
    int next_classes = CountClasses(colors);
    if (next_classes == classes) break;  // Partition stable: fixpoint.
    classes = next_classes;
  }
}

void AppendHex(std::string& out, uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  out += buffer;
}

/// Serializes the graph under the total node order induced by discrete
/// colors. Equal strings imply identical labeled probabilistic graphs.
std::string SerializeOrdered(const LabelView& view,
                             const std::vector<uint64_t>& colors,
                             std::vector<int>* position_out) {
  std::vector<int> order(static_cast<size_t>(view.n));
  for (int i = 0; i < view.n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return colors[static_cast<size_t>(a)] < colors[static_cast<size_t>(b)];
  });
  std::vector<int> position(static_cast<size_t>(view.n));
  for (int pos = 0; pos < view.n; ++pos) {
    position[static_cast<size_t>(order[static_cast<size_t>(pos)])] = pos;
  }
  if (position_out != nullptr) *position_out = position;

  std::string out;
  out.reserve(32 + 32 * static_cast<size_t>(view.n) +
              40 * view.edges.size());
  out += "g " + std::to_string(view.n) + " " +
         std::to_string(view.edges.size()) + "\n";
  for (int pos = 0; pos < view.n; ++pos) {
    int node = order[static_cast<size_t>(pos)];
    out += "v " + std::to_string(pos) + " ";
    AppendHex(out, view.p_bits[static_cast<size_t>(node)]);
    out += " " + std::to_string(view.role[static_cast<size_t>(node)]) + "\n";
  }
  struct EdgeTuple {
    int from;
    int to;
    uint64_t q_bits;
  };
  std::vector<EdgeTuple> tuples;
  tuples.reserve(view.edges.size());
  for (const LabelView::Edge& edge : view.edges) {
    tuples.push_back({position[static_cast<size_t>(edge.from)],
                      position[static_cast<size_t>(edge.to)], edge.q_bits});
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const EdgeTuple& a, const EdgeTuple& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.q_bits < b.q_bits;
            });
  for (const EdgeTuple& t : tuples) {
    out += "e " + std::to_string(t.from) + " " + std::to_string(t.to) + " ";
    AppendHex(out, t.q_bits);
    out += "\n";
  }
  return out;
}

/// Individualization-refinement search for the lexicographically smallest
/// serialization. Within the leaf budget every member of the first
/// ambiguous color class is tried, which makes the result a true
/// canonical form; past the budget only the first branch is kept (still
/// deterministic, possibly non-canonical — a cache-hit-rate concern, not
/// a correctness one).
struct Canonizer {
  const LabelView& view;
  int leaves_left;
  std::string best;
  std::vector<int> best_position;

  void Run(std::vector<uint64_t> colors) {
    Refine(view, colors);
    // Find the ambiguous class with the smallest color value.
    std::vector<int> order(static_cast<size_t>(view.n));
    for (int i = 0; i < view.n; ++i) order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return colors[static_cast<size_t>(a)] < colors[static_cast<size_t>(b)];
    });
    std::vector<int> ambiguous;
    for (size_t i = 0; i < order.size();) {
      size_t j = i;
      while (j < order.size() &&
             colors[static_cast<size_t>(order[j])] ==
                 colors[static_cast<size_t>(order[i])]) {
        ++j;
      }
      if (j - i > 1) {
        ambiguous.assign(order.begin() + static_cast<long>(i),
                         order.begin() + static_cast<long>(j));
        break;
      }
      i = j;
    }
    if (ambiguous.empty()) {
      std::vector<int> position;
      std::string repr = SerializeOrdered(view, colors, &position);
      --leaves_left;
      if (best.empty() || repr < best) {
        best = std::move(repr);
        best_position = std::move(position);
      }
      return;
    }
    std::sort(ambiguous.begin(), ambiguous.end());
    bool first = true;
    for (int node : ambiguous) {
      if (!first && leaves_left <= 0) break;
      first = false;
      std::vector<uint64_t> branch = colors;
      branch[static_cast<size_t>(node)] =
          Mix(branch[static_cast<size_t>(node)], 0xC3);
      Run(std::move(branch));
    }
  }
};

/// Canonical labeling of `query_graph`: repr + the original-dense-id ->
/// canonical-position map.
CanonicalKey CanonicalizeView(const LabelView& view,
                              const CanonicalizeOptions& options,
                              std::vector<int>* position_out) {
  std::vector<uint64_t> colors(static_cast<size_t>(view.n));
  for (int i = 0; i < view.n; ++i) {
    colors[static_cast<size_t>(i)] =
        Mix(view.p_bits[static_cast<size_t>(i)],
            view.role[static_cast<size_t>(i)]);
  }
  Canonizer canonizer{view, std::max(1, options.max_label_leaves), {}, {}};
  canonizer.Run(std::move(colors));
  CanonicalKey key;
  key.repr = std::move(canonizer.best);
  key.hash = Fnv1a64(key.repr);
  if (position_out != nullptr) *position_out = canonizer.best_position;
  return key;
}

}  // namespace

Result<CanonicalCandidate> CanonicalizeCandidate(
    const QueryGraph& query_graph, NodeId target,
    const CanonicalizeOptions& options, const CsrSnapshot* graph_csr) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (std::find(query_graph.answers.begin(), query_graph.answers.end(),
                target) == query_graph.answers.end()) {
    return Status::InvalidArgument(
        "canonical: target is not an answer node of the query graph");
  }

  // Restrict to this answer's evidence subgraph, then reduce with only
  // the source and this target protected — other answers are ordinary
  // interior nodes here, which is what lets distinct tuples share a
  // canonical form.
  std::vector<bool> kept;
  std::vector<bool>* kept_out = options.collect_provenance ? &kept : nullptr;
  QueryGraph restricted =
      graph_csr != nullptr
          ? RestrictToQueryRelevantSubgraph(query_graph, {target}, *graph_csr,
                                            kept_out)
          : RestrictToQueryRelevantSubgraph(query_graph, {target}, kept_out);

  CanonicalCandidate out;
  if (options.collect_provenance) {
    const ProbabilisticEntityGraph& graph = query_graph.graph;
    for (NodeId id = 0; id < graph.node_capacity(); ++id) {
      if (!kept[static_cast<size_t>(id)]) continue;
      out.provenance.nodes.push_back(id);
      // Only kept nodes' out-edges can land in the subgraph, so the scan
      // is proportional to the candidate's footprint, not the full graph
      // (re-canonicalization runs once per answer per delta).
      graph.ForEachOutEdge(id, [&](EdgeId e) {
        if (kept[static_cast<size_t>(graph.edge(e).to)]) {
          out.provenance.edges.push_back(e);
        }
      });
    }
    std::sort(out.provenance.edges.begin(), out.provenance.edges.end());
  }
  out.reduction_stats = ReduceQueryGraph(restricted, options.reduction);

  LabelView view = BuildView(restricted);
  std::vector<int> position;
  out.key = CanonicalizeView(view, options, &position);

  // Rebuild the reduced graph in canonical order so every isomorphic
  // input produces this exact graph (same numbering, same probability
  // bits) and downstream computations become pure functions of the key.
  std::vector<int> node_at(position.size());
  for (size_t i = 0; i < position.size(); ++i) {
    node_at[static_cast<size_t>(position[i])] = static_cast<int>(i);
  }
  for (int pos = 0; pos < view.n; ++pos) {
    int node = node_at[static_cast<size_t>(pos)];
    NodeId id =
        out.canonical.graph.AddNode(view.p[static_cast<size_t>(node)]);
    uint8_t role = view.role[static_cast<size_t>(node)];
    if (role & kRoleSource) out.canonical.source = id;
    if (role & kRoleTarget) out.canonical.answers.push_back(id);
  }
  struct EdgeTuple {
    int from;
    int to;
    uint64_t q_bits;
    double q;
  };
  std::vector<EdgeTuple> tuples;
  tuples.reserve(view.edges.size());
  for (const LabelView::Edge& edge : view.edges) {
    tuples.push_back({position[static_cast<size_t>(edge.from)],
                      position[static_cast<size_t>(edge.to)], edge.q_bits,
                      edge.q});
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const EdgeTuple& a, const EdgeTuple& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.q_bits < b.q_bits;
            });
  for (const EdgeTuple& t : tuples) {
    out.canonical.graph.AddEdge(t.from, t.to, t.q).value();
  }
  out.target = out.canonical.answers.empty() ? kInvalidNode
                                             : out.canonical.answers[0];
  BIORANK_RETURN_IF_ERROR(out.canonical.Validate());
  return out;
}

Result<CanonicalKey> CanonicalQueryGraphKey(const QueryGraph& query_graph,
                                            const CanonicalizeOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  LabelView view = BuildView(query_graph);
  return CanonicalizeView(view, options, nullptr);
}

}  // namespace biorank
