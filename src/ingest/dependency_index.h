// Reverse dependency index over a live query graph: which answers' (and
// therefore which canonical cache keys') restricted evidence subgraphs
// contain a given tuple (node), evidence link (edge), or source (entity
// set). Populated from the provenance that core/canonical.cc records
// during canonicalization, and consulted when an EvidenceDelta lands so
// the update applier dirties exactly the affected answers and the
// ReliabilityCache drops exactly the orphaned keys — instead of a full
// rebuild plus cache flush.
//
// Soundness note: cache keys are pure functions of the subgraph (see
// core/canonical.h), so a *missed* invalidation can never produce a
// wrong value — a dirty answer re-canonicalizes to a fresh key. What the
// index must get right is the dirty-answer cover: every answer whose
// restricted subgraph an op can change must be listed. The rules:
//   remove/reweight edge e  -> answers whose subgraph contains e
//   revise node n           -> answers whose subgraph contains n
//   revise source prior S   -> answers whose subgraph has a node of S
//   add edge (u, v)         -> answers reachable from v in the *updated*
//                              graph (every new source->t path through
//                              the new edge continues from v, so any
//                              affected target t is a descendant of v)
// The first three are exact; the last is a conservative superset.

#ifndef BIORANK_INGEST_DEPENDENCY_INDEX_H_
#define BIORANK_INGEST_DEPENDENCY_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/canonical.h"
#include "core/query_graph.h"
#include "ingest/delta.h"

namespace biorank::ingest {

/// Maps graph elements to the answers (by index into the live graph's
/// answer list) depending on them, and answers to their current
/// canonical keys. Not internally synchronized: the update applier
/// guards it with the same writer lock as the graph.
class DependencyIndex {
 public:
  DependencyIndex() = default;

  /// (Re)registers answer `answer_index`: its current canonical key and
  /// the provenance of its restricted subgraph. Replaces any previous
  /// registration of the same answer.
  void Register(int answer_index, const CanonicalKey& key,
                const CandidateProvenance& provenance,
                const QueryGraph& graph);

  /// Drops answer `answer_index`'s postings and key. No-op if absent.
  void Unregister(int answer_index);

  /// Current canonical key of an answer, or nullptr if unregistered.
  const CanonicalKey* KeyOf(int answer_index) const;

  /// Answer indices whose subgraphs `delta` can affect, sorted and
  /// deduplicated. `updated_graph` must be the graph *after* the delta
  /// was applied (the add-edge rule walks descendants in it);
  /// `applied.new_edges` identifies the added edges.
  std::vector<int> AffectedAnswers(const EvidenceDelta& delta,
                                   const AppliedDelta& applied,
                                   const QueryGraph& updated_graph) const;

  /// Canonical keys used *only* by answers in `answers` (sorted input).
  /// Once those answers are re-canonicalized these keys have no remaining
  /// user in this graph — they are the entries worth evicting from the
  /// reliability cache. Keys shared with a clean answer are kept (that
  /// answer still hits them).
  std::vector<CanonicalKey> ExclusiveKeys(
      const std::vector<int>& answers) const;

  /// Whether any registered answer currently maps to `key`. The applier
  /// uses this after re-canonicalization to keep cache entries whose key
  /// a dirty answer re-derived unchanged (a no-op revision must not cost
  /// the cache).
  bool HasKey(const CanonicalKey& key) const {
    return by_key_.count(key.repr) > 0;
  }

  /// Registered answer count (for tests).
  int registered() const { return static_cast<int>(by_answer_.size()); }

  void Clear();

 private:
  struct AnswerEntry {
    CanonicalKey key;
    std::vector<NodeId> nodes;
    std::vector<EdgeId> edges;
    std::vector<std::string> entity_sets;  ///< Distinct sets among nodes.
  };

  /// Postings: element -> sorted answer indices. Kept sorted by the
  /// (re)build in Register/Unregister.
  std::unordered_map<int, AnswerEntry> by_answer_;
  std::unordered_map<NodeId, std::vector<int>> by_node_;
  std::unordered_map<EdgeId, std::vector<int>> by_edge_;
  std::unordered_map<std::string, std::vector<int>> by_entity_set_;
  /// Key repr -> answers currently mapped to it (the user sets behind
  /// ExclusiveKeys).
  std::unordered_map<std::string, std::vector<int>> by_key_;
};

}  // namespace biorank::ingest

#endif  // BIORANK_INGEST_DEPENDENCY_INDEX_H_
