// Kendall tau-b rank correlation between two rankings, the metric of
// the Figure 6 sensitivity study.

#ifndef BIORANK_EVAL_RANK_CORRELATION_H_
#define BIORANK_EVAL_RANK_CORRELATION_H_

#include <vector>

#include "core/ranking.h"
#include "util/status.h"

namespace biorank {

/// Kendall's tau-b rank correlation between two score assignments over
/// the same item set. 1 = identical order, -1 = reversed, 0 = unrelated;
/// tau-b corrects for ties on either side (ubiquitous here: deterministic
/// scores tie heavily).
///
/// The sensitivity literature the paper cites (Kiersztok & Wang; Pradhan
/// et al.) frames robustness as the absence of rank-order swaps; this
/// measures exactly that, complementing the AP-based Figure 6 analysis.
/// Fails when sizes differ or fewer than two items are given.
Result<double> KendallTauB(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Tau-b between two rankings of the same answer set (matched by node
/// id). Fails if the rankings cover different node sets.
Result<double> RankingKendallTau(const std::vector<RankedAnswer>& a,
                                 const std::vector<RankedAnswer>& b);

}  // namespace biorank

#endif  // BIORANK_EVAL_RANK_CORRELATION_H_
