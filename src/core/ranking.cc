#include "core/ranking.h"

#include <algorithm>

#include "core/closed_form.h"
#include "core/reduction.h"
#include "core/reliability_exact.h"
#include "core/topological.h"

namespace biorank {

const char* RankingMethodName(RankingMethod method) {
  switch (method) {
    case RankingMethod::kReliability:
      return "Rel";
    case RankingMethod::kPropagation:
      return "Prop";
    case RankingMethod::kDiffusion:
      return "Diff";
    case RankingMethod::kInEdge:
      return "InEdge";
    case RankingMethod::kPathCount:
      return "PathC";
  }
  return "?";
}

std::vector<RankingMethod> AllRankingMethods() {
  return {RankingMethod::kReliability, RankingMethod::kPropagation,
          RankingMethod::kDiffusion, RankingMethod::kInEdge,
          RankingMethod::kPathCount};
}

std::vector<RankedAnswer> RankAnswers(const std::vector<NodeId>& answers,
                                      const std::vector<double>& scores,
                                      double tie_epsilon) {
  std::vector<RankedAnswer> ranked;
  ranked.reserve(answers.size());
  for (NodeId a : answers) {
    double score =
        (a >= 0 && static_cast<size_t>(a) < scores.size()) ? scores[a] : 0.0;
    ranked.push_back(RankedAnswer{a, score, 0, 0});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnswer& x, const RankedAnswer& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.node < y.node;
            });
  // Chain-group ties: a new group starts when the gap to the previous
  // score exceeds tie_epsilon.
  size_t group_start = 0;
  for (size_t i = 0; i <= ranked.size(); ++i) {
    bool boundary =
        i == ranked.size() ||
        (i > 0 && ranked[i - 1].score - ranked[i].score > tie_epsilon);
    if (boundary && i > group_start) {
      for (size_t j = group_start; j < i; ++j) {
        ranked[j].rank_lo = static_cast<int>(group_start) + 1;
        ranked[j].rank_hi = static_cast<int>(i);
      }
      group_start = i;
    }
  }
  return ranked;
}

Ranker::Ranker(RankerOptions options) : options_(options) {}

Result<std::vector<double>> Ranker::ReliabilityScores(
    const QueryGraph& query_graph) const {
  switch (options_.reliability_engine) {
    case ReliabilityEngine::kClosedForm: {
      Result<std::vector<double>> per_answer =
          ClosedFormReliabilityAllAnswers(query_graph);
      if (!per_answer.ok()) return per_answer.status();
      // Spread the per-answer values into a NodeId-indexed vector.
      std::vector<double> scores(query_graph.graph.node_capacity(), 0.0);
      for (size_t i = 0; i < query_graph.answers.size(); ++i) {
        scores[query_graph.answers[i]] = per_answer.value()[i];
      }
      return scores;
    }
    case ReliabilityEngine::kExact: {
      Result<std::vector<double>> per_answer =
          ExactReliabilityAllAnswers(query_graph);
      if (!per_answer.ok()) return per_answer.status();
      std::vector<double> scores(query_graph.graph.node_capacity(), 0.0);
      for (size_t i = 0; i < query_graph.answers.size(); ++i) {
        scores[query_graph.answers[i]] = per_answer.value()[i];
      }
      return scores;
    }
    case ReliabilityEngine::kAuto: {
      Result<std::vector<double>> per_answer =
          ClosedFormReliabilityAllAnswers(query_graph);
      if (per_answer.ok()) {
        std::vector<double> scores(query_graph.graph.node_capacity(), 0.0);
        for (size_t i = 0; i < query_graph.answers.size(); ++i) {
          scores[query_graph.answers[i]] = per_answer.value()[i];
        }
        return scores;
      }
      [[fallthrough]];
    }
    case ReliabilityEngine::kMonteCarlo: {
      if (options_.reduce_before_mc) {
        QueryGraph reduced = query_graph;
        ReduceQueryGraph(reduced);
        Result<McEstimate> estimate =
            EstimateReliabilityMc(reduced, options_.mc);
        if (!estimate.ok()) return estimate.status();
        // Reduction preserves NodeIds (tombstones), so the score vector
        // already lines up with the original graph's answer ids.
        return std::move(estimate.value().scores);
      }
      Result<McEstimate> estimate =
          EstimateReliabilityMc(query_graph, options_.mc);
      if (!estimate.ok()) return estimate.status();
      return std::move(estimate.value().scores);
    }
  }
  return Status::Internal("unknown reliability engine");
}

Result<std::vector<double>> Ranker::ScoreAllNodes(
    const QueryGraph& query_graph, RankingMethod method) const {
  switch (method) {
    case RankingMethod::kReliability:
      return ReliabilityScores(query_graph);
    case RankingMethod::kPropagation: {
      Result<IterativeScores> r = Propagate(query_graph, options_.propagation);
      if (!r.ok()) return r.status();
      return std::move(r.value().scores);
    }
    case RankingMethod::kDiffusion: {
      Result<IterativeScores> r = Diffuse(query_graph, options_.diffusion);
      if (!r.ok()) return r.status();
      return std::move(r.value().scores);
    }
    case RankingMethod::kInEdge:
      return InEdgeScores(query_graph);
    case RankingMethod::kPathCount:
      return PathCountScores(query_graph);
  }
  return Status::Internal("unknown ranking method");
}

Result<std::vector<RankedAnswer>> Ranker::Rank(const QueryGraph& query_graph,
                                               RankingMethod method) const {
  Result<std::vector<double>> scores = ScoreAllNodes(query_graph, method);
  if (!scores.ok()) return scores.status();
  return RankAnswers(query_graph.answers, scores.value(),
                     options_.tie_epsilon);
}

}  // namespace biorank
