#include "core/topk_mc.h"

#include <algorithm>
#include <cmath>

#include "core/reduction.h"
#include "core/reliability_mc.h"
#include "util/rng.h"

namespace biorank {

namespace {

/// Two-sided normal quantile for the given confidence (e.g. 1.96 for
/// 0.95). Acklam-style rational approximation is overkill here; a small
/// table with linear interpolation covers the practical range.
double NormalQuantile(double confidence) {
  struct Entry {
    double confidence;
    double z;
  };
  static constexpr Entry kTable[] = {
      {0.50, 0.674}, {0.80, 1.282}, {0.90, 1.645}, {0.95, 1.960},
      {0.98, 2.326}, {0.99, 2.576}, {0.999, 3.291},
  };
  if (confidence <= kTable[0].confidence) return kTable[0].z;
  for (size_t i = 1; i < sizeof(kTable) / sizeof(kTable[0]); ++i) {
    if (confidence <= kTable[i].confidence) {
      const Entry& lo = kTable[i - 1];
      const Entry& hi = kTable[i];
      double t = (confidence - lo.confidence) /
                 (hi.confidence - lo.confidence);
      return lo.z + t * (hi.z - lo.z);
    }
  }
  return 3.291;
}

}  // namespace

Result<TopKResult> RankTopKAdaptive(const QueryGraph& query_graph,
                                    const TopKOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  if (options.k < 1) {
    return Status::InvalidArgument("top-k: k must be >= 1");
  }
  if (options.batch_trials < 1 || options.max_trials < options.batch_trials) {
    return Status::InvalidArgument("top-k: invalid trial budget");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("top-k: confidence must be in (0,1)");
  }

  QueryGraph working = query_graph;
  if (options.reduce_first) ReduceQueryGraph(working);

  // One snapshot for the whole adaptive run: every round simulates the
  // same (reduced) graph and differs only in RNG stream.
  CsrQuerySnapshot snapshot;
  const bool use_snapshot =
      options.backend == McOptions::Backend::kCsrSnapshot;
  if (use_snapshot) {
    Result<CsrQuerySnapshot> built = BuildCsrQuerySnapshot(working);
    if (!built.ok()) return built.status();
    snapshot = std::move(built.value());
  }

  const double z = NormalQuantile(options.confidence);
  const size_t answer_count = working.answers.size();

  TopKResult result;
  // Fewer answers than k: everything is "the top"; still estimate scores
  // with one batch so the ranking is meaningful.
  std::vector<double> sums(query_graph.graph.node_capacity(), 0.0);
  uint64_t batch_index = 0;

  while (result.trials_used < options.max_trials) {
    McOptions mc;
    mc.trials = std::min(options.batch_trials,
                         options.max_trials - result.trials_used);
    // Independent stream per adaptive round, so the trajectory does not
    // depend on how many trials earlier rounds consumed.
    mc.seed = DeriveStreamSeed(options.seed, batch_index++);
    mc.num_threads = options.num_threads;
    mc.pool = options.pool;
    mc.backend = options.backend;
    Result<McEstimate> estimate =
        use_snapshot ? EstimateReliabilityMcOnSnapshot(snapshot, mc)
                     : EstimateReliabilityMc(working, mc);
    if (!estimate.ok()) return estimate.status();
    for (size_t i = 0; i < sums.size() &&
                       i < estimate.value().scores.size();
         ++i) {
      sums[i] += estimate.value().scores[i] *
                 static_cast<double>(mc.trials);
    }
    result.trials_used += mc.trials;

    std::vector<double> scores(sums.size(), 0.0);
    for (size_t i = 0; i < sums.size(); ++i) {
      scores[i] = sums[i] / static_cast<double>(result.trials_used);
    }
    result.ranking = RankAnswers(query_graph.answers, scores);

    if (answer_count <= static_cast<size_t>(options.k)) {
      result.separated = true;  // No boundary to separate.
      break;
    }
    // Boundary separation test: k-th vs (k+1)-th estimate.
    double upper = result.ranking[options.k - 1].score;
    double lower = result.ranking[options.k].score;
    double n = static_cast<double>(result.trials_used);
    double se = std::sqrt(upper * (1.0 - upper) / n +
                          lower * (1.0 - lower) / n);
    if (upper - lower > z * se && upper > lower) {
      result.separated = true;
      break;
    }
  }
  return result;
}

}  // namespace biorank
