#include "shard/partitioner.h"

#include <algorithm>

namespace biorank::shard {

namespace {

/// FNV-1a 64-bit over an arbitrary byte sequence, continuing from
/// `hash`. The reference offset/prime constants; stable across
/// platforms and standard-library implementations.
uint64_t Fnv1a(uint64_t hash, const void* data, size_t size) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

/// splitmix64 finalizer: FNV's low bits are weak for small moduli, so
/// avalanche before reducing to a shard index.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Partitioner::Partitioner(PartitionerOptions options)
    : num_shards_(std::max<uint32_t>(1, options.num_shards)),
      salt_(options.salt) {}

uint32_t Partitioner::ShardOf(std::string_view key) const {
  constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  uint64_t hash = Fnv1a(kOffsetBasis, &salt_, sizeof(salt_));
  hash = Fnv1a(hash, key.data(), key.size());
  return static_cast<uint32_t>(Mix(hash) % num_shards_);
}

std::vector<std::vector<NodeId>> Partitioner::PartitionAnswers(
    const QueryGraph& graph) const {
  std::vector<std::vector<NodeId>> slices(num_shards_);
  for (NodeId answer : graph.answers) {
    slices[ShardOf(graph.graph.node(answer).label)].push_back(answer);
  }
  return slices;
}

}  // namespace biorank::shard
