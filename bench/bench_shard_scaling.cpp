// Scatter–gather serving at 1 / 2 / 4 shards (shard::ShardRouter over
// InProcessTransport fleets). Every shard server is capped at one
// ranking thread — one shard stands in for one process on one core, so
// the sweep measures what sharding itself buys: the cold resolve work
// (canonicalize + bound + Monte Carlo per candidate) partitioned across
// the fleet, scattered by the router's one ParallelFor.
//
// The timed sweep ranks the *full* answer set: rank-all work partitions
// exactly across shards, so the sweep isolates the scatter win. (A
// k << answers sweep would instead measure the pruning asymmetry —
// every shard must produce its slice's top-k for the merge to be exact,
// so sharding deliberately gives up some of the monolith's cross-slice
// pruning; that cost shows up in the separate top-10 probe pass, whose
// merge/short-circuit counters land in the report.)
//
// Gates (in-binary exit code, re-checked by compare_baselines.py):
//  * merged_bit_identical — every router ranking, at every shard count,
//    equals the unsharded serial reference fingerprint bit for bit;
//  * query_path_identical — the end-to-end Query path (front-door crawl
//    + scatter + merge) equals the monolith's Query on the same fleet;
//  * scaling_1_to_4 >= 2.0 when the host has >= 4 real cores (clamped —
//    reported but not gated — below that: a 1-core runner serializes
//    the scatter and measures only merge overhead).
//
// BENCH_shard_scaling.json also records the router's observability
// counters (shard_calls, empty_slices, shards_short_circuited,
// short_circuited_candidates, merged_candidates, admission_rejected,
// peak_inflight) so the report documents the merge's short-circuit
// behaviour and the backpressure path, not just wall times.

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/server.h"
#include "bench_json.h"
#include "bench_util.h"
#include "core/query_graph.h"
#include "shard/router.h"
#include "shard/transport.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

using namespace biorank;

namespace {

constexpr int kTopK = 10;
constexpr uint32_t kShardCounts[] = {1, 2, 4};

constexpr int kAnswersPerGraph = 64;

/// One layered random DAG: a source, `layers` interior layers, then the
/// answer layer, with dense forward and occasional layer-skipping edges
/// — hairy enough that a fair share of answers is irreducible (Monte
/// Carlo work to partition), with the answer count high enough that
/// every shard of a 4-way fleet owns a meaningful slice. Answer labels
/// are their stable partition identity.
QueryGraph MakeLayeredDag(Rng& rng) {
  constexpr int kLayers = 4;
  constexpr int kNodesPerLayer = 8;
  constexpr double kEdgeDensity = 0.45;
  constexpr double kSkipDensity = 0.15;
  QueryGraphBuilder builder;
  std::vector<std::vector<NodeId>> layers = {{builder.Source()}};
  for (int layer = 0; layer < kLayers; ++layer) {
    std::vector<NodeId> current;
    for (int i = 0; i < kNodesPerLayer; ++i) {
      current.push_back(builder.Node(rng.NextUniform(0.3, 1.0)));
    }
    layers.push_back(current);
  }
  std::vector<NodeId> answers;
  for (int i = 0; i < kAnswersPerGraph; ++i) {
    answers.push_back(builder.Node(rng.NextUniform(0.3, 1.0),
                                   "ans" + std::to_string(i)));
  }
  layers.push_back(answers);
  for (size_t layer = 0; layer + 1 < layers.size(); ++layer) {
    for (NodeId from : layers[layer]) {
      for (NodeId to : layers[layer + 1]) {
        if (rng.NextBernoulli(kEdgeDensity)) {
          builder.Edge(from, to, rng.NextUniform(0.2, 1.0));
        }
      }
      for (size_t skip = layer + 2; skip < layers.size(); ++skip) {
        for (NodeId to : layers[skip]) {
          if (rng.NextBernoulli(kSkipDensity)) {
            builder.Edge(from, to, rng.NextUniform(0.2, 1.0));
          }
        }
      }
    }
  }
  // Connectivity hooks: every non-source node gets at least one in-edge
  // from the previous layer.
  for (size_t layer = 1; layer < layers.size(); ++layer) {
    for (NodeId to : layers[layer]) {
      const std::vector<NodeId>& prev = layers[layer - 1];
      builder.Edge(prev[static_cast<size_t>(rng.NextBounded(prev.size()))], to,
                   rng.NextUniform(0.2, 1.0));
    }
  }
  return std::move(builder).Build(answers);
}

std::vector<QueryGraph> BuildWorkload(int graphs) {
  Rng rng(20260808);
  std::vector<QueryGraph> workload;
  workload.reserve(static_cast<size_t>(graphs));
  for (int i = 0; i < graphs; ++i) {
    workload.push_back(MakeLayeredDag(rng));
  }
  return workload;
}

api::ServerOptions OneThreadServers() {
  api::ServerOptions options;
  options.ranking.num_threads = 1;
  return options;
}

}  // namespace

int main() {
  const int graphs = std::max(4, 4 * bench::Repetitions(3));
  std::cout << "=== shard::ShardRouter scatter-gather scaling: " << graphs
            << " graphs, top-" << kTopK << ", 1/2/4 one-thread shards ===\n\n";

  std::vector<QueryGraph> workload = BuildWorkload(graphs);

  // The unsharded serial reference every merged ranking must reproduce:
  // the full ranked answer set, and its top-10 for the probe pass.
  api::Server reference(OneThreadServers());
  std::vector<std::vector<std::pair<NodeId, double>>> expected_full;
  std::vector<std::vector<std::pair<NodeId, double>>> expected_topk;
  expected_full.reserve(workload.size());
  expected_topk.reserve(workload.size());
  for (const QueryGraph& graph : workload) {
    api::Result<api::QueryResponse> full = reference.RankGraph(graph, 0);
    api::Result<api::QueryResponse> topk = reference.RankGraph(graph, kTopK);
    if (!full.ok() || !topk.ok()) {
      std::cerr << (full.ok() ? topk.status() : full.status()) << "\n";
      return 1;
    }
    expected_full.push_back(api::RankingFingerprint(full.value()));
    expected_topk.push_back(api::RankingFingerprint(topk.value()));
  }

  bench::WallTimer bench_timer;
  bool merged_bit_identical = true;
  double cold_s_1 = 0.0;
  double cold_s_4 = 0.0;
  shard::RouterStats sweep_stats;  // The 4-shard router's counters.
  TextTable table({"shards", "cold s", "warm s", "cold graphs/s",
                   "speedup vs 1", "warm hit"});
  CsvWriter csv({"shards", "cold_s", "warm_s", "cold_graphs_per_s",
                 "speedup_vs_1", "warm_hit_rate"});
  bench::JsonReport report("shard_scaling");

  for (uint32_t shards : kShardCounts) {
    shard::InProcessTransport transport(shards, OneThreadServers());
    shard::ShardRouterOptions options;
    options.partition.num_shards = shards;
    shard::ShardRouter router(transport.server(0), transport, options);

    // Cold pass (rank-all): fresh per-shard caches, so the timed work
    // is the full resolve pipeline partitioned across the fleet.
    bench::WallTimer cold_timer;
    for (size_t i = 0; i < workload.size(); ++i) {
      api::Result<api::QueryResponse> response =
          router.RankGraph(workload[i], 0);
      if (!response.ok()) {
        std::cerr << response.status() << "\n";
        return 1;
      }
      if (api::RankingFingerprint(response.value()) != expected_full[i]) {
        merged_bit_identical = false;
      }
    }
    double cold_s = cold_timer.Seconds();

    // Warm pass: every candidate is cached shard-side; what remains is
    // scatter + merge overhead.
    serve::RequestStats warm_stats;
    bench::WallTimer warm_timer;
    for (size_t i = 0; i < workload.size(); ++i) {
      api::Result<api::QueryResponse> response =
          router.RankGraph(workload[i], 0);
      if (!response.ok()) {
        std::cerr << response.status() << "\n";
        return 1;
      }
      warm_stats.Add(response.value().stats);
      if (api::RankingFingerprint(response.value()) != expected_full[i]) {
        merged_bit_identical = false;
      }
    }
    double warm_s = warm_timer.Seconds();

    // Top-10 probe pass (warm): the k << answers regime the merge's
    // bounds cutoff exists for — its short-circuit counters document
    // which shards' leftovers were provably unnecessary.
    for (size_t i = 0; i < workload.size(); ++i) {
      api::Result<api::QueryResponse> response =
          router.RankGraph(workload[i], kTopK);
      if (!response.ok()) {
        std::cerr << response.status() << "\n";
        return 1;
      }
      if (api::RankingFingerprint(response.value()) != expected_topk[i]) {
        merged_bit_identical = false;
      }
    }

    if (shards == 1) cold_s_1 = cold_s;
    if (shards == 4) {
      cold_s_4 = cold_s;
      sweep_stats = router.Stats();
    }
    double speedup = shards == 1 || cold_s <= 0.0 ? 1.0 : cold_s_1 / cold_s;
    std::vector<std::string> cells = {
        std::to_string(shards), FormatDouble(cold_s, 3),
        FormatDouble(warm_s, 3),
        FormatDouble(static_cast<double>(workload.size()) / cold_s, 2),
        FormatDouble(speedup, 2), FormatDouble(warm_stats.CacheHitRate(), 3)};
    table.AddRow(cells);
    csv.AddRow(cells);
    report.AddRow({{"shards", static_cast<int64_t>(shards)},
                   {"cold_s", cold_s},
                   {"warm_s", warm_s},
                   {"cold_graphs_per_s",
                    static_cast<double>(workload.size()) / cold_s},
                   {"speedup_vs_1", speedup},
                   {"warm_hit_rate", warm_stats.CacheHitRate()}});
  }
  table.Print(std::cout);

  // End-to-end Query path at 4 shards: front-door crawl + scatter +
  // merge vs the same fleet's front server answering alone.
  bool query_path_identical = true;
  {
    shard::InProcessTransport transport(4);
    shard::ShardRouterOptions options;
    options.partition.num_shards = 4;
    shard::ShardRouter router(transport.server(0), transport, options);
    std::vector<ScenarioCase> cases = BuildScenarioCases(
        transport.server(0).universe(), ScenarioId::kScenario1WellKnown);
    const size_t probes = std::min<size_t>(4, cases.size());
    for (size_t i = 0; i < probes; ++i) {
      api::QueryRequest request =
          api::MakeProteinFunctionRequest(cases[i].gene_symbol, kTopK);
      api::Result<api::QueryResponse> sharded = router.Query(request);
      api::Result<api::QueryResponse> mono =
          transport.server(0).Query(request);
      if (!sharded.ok() || !mono.ok()) {
        std::cerr << "query path failed: "
                  << (sharded.ok() ? mono.status() : sharded.status()) << "\n";
        return 1;
      }
      if (api::RankingFingerprint(sharded.value()) !=
          api::RankingFingerprint(mono.value())) {
        query_path_identical = false;
      }
    }

    // Backpressure probe: a capacity-1 router over the same fleet under
    // a 4-thread burst — the admission counters for the report (how
    // many attempts the cap turned away is scheduling-dependent, so it
    // is recorded, not gated).
    shard::ShardRouterOptions capped_options = options;
    capped_options.max_inflight = 1;
    shard::ShardRouter capped(transport.server(0), transport, capped_options);
    std::vector<std::thread> burst;
    for (int t = 0; t < 4; ++t) {
      burst.emplace_back([&, t] {
        for (int attempt = 0; attempt < 3; ++attempt) {
          (void)capped.RankGraph(workload[static_cast<size_t>(t) %
                                          workload.size()],
                                 kTopK);
        }
      });
    }
    for (std::thread& thread : burst) thread.join();
    shard::RouterStats capped_stats = capped.Stats();
    report.SetMetric("admission_attempts", static_cast<int64_t>(
                                               capped_stats.queries +
                                               capped_stats.admission_rejected));
    report.SetMetric("admission_rejected",
                     static_cast<int64_t>(capped_stats.admission_rejected));
    report.SetMetric("peak_inflight",
                     static_cast<int64_t>(capped_stats.peak_inflight));
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const bool scaling_gated = hardware >= 4;
  const double scaling_1_to_4 = cold_s_4 > 0.0 ? cold_s_1 / cold_s_4 : 0.0;

  std::cout << "\nScaling 1 -> 4 shards: " << FormatDouble(scaling_1_to_4, 2)
            << "x on " << hardware << " cores"
            << (scaling_gated ? "" : " (floor clamped: < 4 cores)") << ".\n"
            << "Merged rankings "
            << (merged_bit_identical ? "bit-identical" : "DIVERGED")
            << " vs the unsharded serial reference at every shard count; "
            << "Query path "
            << (query_path_identical ? "bit-identical" : "DIVERGED")
            << " at 4 shards.\n";
  bench::MaybeWriteCsv(csv, "shard_scaling");

  report.SetWallTime(bench_timer.Seconds());
  report.SetMetric("graphs", static_cast<int64_t>(workload.size()));
  report.SetMetric("k", kTopK);
  report.SetMetric("answers_per_graph", kAnswersPerGraph);
  report.SetMetric("hardware_concurrency", static_cast<int64_t>(hardware));
  report.SetMetric("scaling_1_to_4", scaling_1_to_4);
  report.SetMetric("scaling_clamped", !scaling_gated);
  report.SetMetric("merged_bit_identical", merged_bit_identical);
  report.SetMetric("query_path_identical", query_path_identical);
  report.SetMetric("shard_calls", static_cast<int64_t>(sweep_stats.shard_calls));
  report.SetMetric("empty_slices",
                   static_cast<int64_t>(sweep_stats.empty_slices));
  report.SetMetric("merged_candidates",
                   static_cast<int64_t>(sweep_stats.merged_candidates));
  report.SetMetric("shards_short_circuited",
                   static_cast<int64_t>(sweep_stats.shards_short_circuited));
  report.SetMetric(
      "short_circuited_candidates",
      static_cast<int64_t>(sweep_stats.short_circuited_candidates));
  // Per-shard RPC latency histograms (biorank_shard_rpc_shard<i>_seconds
  // in the front server's registry, snapshotted into RouterStats):
  // every observation across the 4-shard sweep landed in exactly one
  // shard's histogram, so the summed count must equal shard_calls.
  int64_t rpc_hist_count = 0;
  for (const obs::HistogramSnapshot& h : sweep_stats.shard_rpc) {
    rpc_hist_count += static_cast<int64_t>(h.count);
  }
  report.SetMetric("rpc_hist_shards",
                   static_cast<int64_t>(sweep_stats.shard_rpc.size()));
  report.SetMetric("rpc_hist_count", rpc_hist_count);
  Status write_status = report.Write();

  bool scaling_ok = !scaling_gated || scaling_1_to_4 >= 2.0;
  if (!merged_bit_identical) {
    std::cerr << "shard gate FAILED: merged rankings diverged from the "
                 "unsharded reference\n";
  }
  if (!query_path_identical) {
    std::cerr << "shard gate FAILED: Query path diverged from the monolith\n";
  }
  if (!scaling_ok) {
    std::cerr << "shard gate FAILED: scaling_1_to_4 "
              << FormatDouble(scaling_1_to_4, 2) << "x is below the 2.0x "
              << "floor on a " << hardware << "-core host\n";
  }
  return merged_bit_identical && query_path_identical && scaling_ok &&
                 write_status.ok()
             ? 0
             : 1;
}
