#include "core/trial_bound.h"

#include <cmath>

namespace biorank {

Result<int64_t> RequiredMcTrials(double epsilon, double delta) {
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(delta > 0.0) || !(delta < 1.0)) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  double one_plus = 1.0 + epsilon;
  double n = one_plus * one_plus * one_plus /
             (epsilon * epsilon * (1.0 + epsilon / 3.0)) *
             std::log(1.0 / delta);
  return static_cast<int64_t>(std::ceil(n));
}

}  // namespace biorank
