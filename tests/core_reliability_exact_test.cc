#include "core/reliability_exact.h"

#include <gtest/gtest.h>

#include "core/query_graph.h"

namespace biorank {
namespace {

TEST(BruteForceTest, SingleEdge) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.4, 1e-12);
}

TEST(BruteForceTest, SerialChain) {
  QueryGraphBuilder b;
  NodeId mid = b.Node(0.5, "mid");
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), mid, 0.9);
  b.Edge(mid, t, 0.7);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.9 * 0.5 * 0.7 * 0.8, 1e-12);
}

TEST(BruteForceTest, ParallelEdges) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.5);
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.75, 1e-12);
}

TEST(BruteForceTest, Fig4aIsHalf) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<double> r = ExactReliabilityBruteForce(g, g.answers[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.5, 1e-12);
}

TEST(BruteForceTest, WheatstoneBridgeMatchesPaper) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<double> r = ExactReliabilityBruteForce(g, g.answers[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 15.0 / 32.0, 1e-12);  // 0.469 in Figure 4b.
}

TEST(BruteForceTest, UnreachableTargetIsZero) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(BruteForceTest, SourceIsItsOwnTargetWithProbOne) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  b.Edge(b.Source(), t, 0.5);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, g.source);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(BruteForceTest, RefusesTooManyUncertainElements) {
  QueryGraphBuilder b;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) {
    NodeId n = b.Node(0.5);
    b.Edge(b.Source(), n, 0.5);
    nodes.push_back(n);
  }
  QueryGraph g = std::move(b).Build(nodes);
  Result<double> r = ExactReliabilityBruteForce(g, nodes[0], 10);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BruteForceTest, ZeroProbabilityEdgeNeverConnects) {
  QueryGraphBuilder b;
  NodeId t = b.Node(1.0, "t");
  b.Edge(b.Source(), t, 0.0);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityBruteForce(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(FactoringTest, MatchesBruteForceOnBridge) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  Result<double> r = ExactReliabilityFactoring(g, g.answers[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 15.0 / 32.0, 1e-12);
}

TEST(FactoringTest, MatchesBruteForceOnFig4a) {
  QueryGraph g = MakeFig4aSerialParallel();
  Result<double> r = ExactReliabilityFactoring(g, g.answers[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.5, 1e-12);
}

TEST(FactoringTest, WorksWithoutReductions) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  FactoringOptions options;
  options.use_reductions = false;
  Result<double> r = ExactReliabilityFactoring(g, g.answers[0], options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 15.0 / 32.0, 1e-12);
}

TEST(FactoringTest, HandlesUncertainNodesViaReification) {
  QueryGraphBuilder b;
  NodeId mid = b.Node(0.5, "mid");
  NodeId t = b.Node(0.8, "t");
  b.Edge(b.Source(), mid, 0.9);
  b.Edge(mid, t, 0.7);
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityFactoring(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 0.9 * 0.5 * 0.7 * 0.8, 1e-12);
}

TEST(FactoringTest, UnreachableTargetIsZero) {
  QueryGraphBuilder b;
  NodeId t = b.Node(0.9, "t");
  QueryGraph g = std::move(b).Build({t});
  Result<double> r = ExactReliabilityFactoring(g, t);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(FactoringTest, BudgetExceededFails) {
  QueryGraph g = MakeFig4bWheatstoneBridge();
  FactoringOptions options;
  options.use_reductions = false;
  options.max_calls = 2;
  Result<double> r = ExactReliabilityFactoring(g, g.answers[0], options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FactoringTest, AllAnswersVector) {
  QueryGraphBuilder b;
  NodeId t1 = b.Node(1.0, "t1");
  NodeId t2 = b.Node(1.0, "t2");
  b.Edge(b.Source(), t1, 0.5);
  b.Edge(b.Source(), t2, 0.25);
  QueryGraph g = std::move(b).Build({t1, t2});
  Result<std::vector<double>> r = ExactReliabilityAllAnswers(g);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_NEAR(r.value()[0], 0.5, 1e-12);
  EXPECT_NEAR(r.value()[1], 0.25, 1e-12);
}

TEST(FactoringTest, DoubleBridgeMatchesBruteForce) {
  // Two Wheatstone bridges in series: irreducible beyond one conditioning.
  QueryGraphBuilder b;
  NodeId a1 = b.Node(1.0), b1 = b.Node(1.0), m = b.Node(1.0);
  NodeId a2 = b.Node(1.0), b2 = b.Node(1.0), t = b.Node(1.0);
  NodeId s = b.Source();
  b.Edge(s, a1, 0.6);
  b.Edge(s, b1, 0.7);
  b.Edge(a1, b1, 0.5);
  b.Edge(a1, m, 0.8);
  b.Edge(b1, m, 0.4);
  b.Edge(m, a2, 0.6);
  b.Edge(m, b2, 0.7);
  b.Edge(a2, b2, 0.5);
  b.Edge(a2, t, 0.8);
  b.Edge(b2, t, 0.4);
  QueryGraph g = std::move(b).Build({t});
  Result<double> brute = ExactReliabilityBruteForce(g, t);
  Result<double> factored = ExactReliabilityFactoring(g, t);
  ASSERT_TRUE(brute.ok());
  ASSERT_TRUE(factored.ok());
  EXPECT_NEAR(brute.value(), factored.value(), 1e-12);
}

}  // namespace
}  // namespace biorank
