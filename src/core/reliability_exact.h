// Exact source-target reliability: brute-force enumeration of
// possible worlds and the factoring (conditioning) algorithm. Both are
// exponential in the worst case; they serve as ground truth for the
// estimators and property tests.

#ifndef BIORANK_CORE_RELIABILITY_EXACT_H_
#define BIORANK_CORE_RELIABILITY_EXACT_H_

#include <cstdint>
#include <vector>

#include "core/query_graph.h"
#include "util/status.h"

namespace biorank {

/// Exact source-target reliability of one answer node by enumerating every
/// subset of uncertain elements (nodes with 0 < p < 1, edges with
/// 0 < q < 1). Exponential: refuses graphs with more than
/// `max_uncertain_elements` uncertain elements. Intended as the oracle for
/// property tests; use factoring or Monte Carlo for real graphs.
///
/// The score is P[target reachable from source AND target present],
/// matching the semantics of Algorithm 3.1.
Result<double> ExactReliabilityBruteForce(const QueryGraph& query_graph,
                                          NodeId target,
                                          int max_uncertain_elements = 25);

/// Options for the factoring algorithm.
struct FactoringOptions {
  /// Interleave series-parallel reductions between conditioning steps.
  /// Dramatically shrinks the recursion on workflow-shaped graphs.
  bool use_reductions = true;
  /// Upper bound on recursive conditioning calls; exceeding it returns
  /// FailedPrecondition ("graph too complex"). #P-hardness (Valiant 1979)
  /// means some graphs are genuinely out of reach.
  int64_t max_calls = 4'000'000;
};

/// Exact source-target reliability by the factoring (edge conditioning)
/// method: pick an uncertain edge e, then
///   R = q(e) * R(G with e certain) + (1 - q(e)) * R(G without e),
/// with series-parallel reductions applied between steps and two prunings
/// (target unreachable via any alive edge -> 0; target reachable via
/// certain edges only -> 1). Node failures are removed first by reifying
/// the graph. Exact up to floating point; fails with FailedPrecondition on
/// graphs exceeding `options.max_calls`.
Result<double> ExactReliabilityFactoring(const QueryGraph& query_graph,
                                         NodeId target,
                                         const FactoringOptions& options = {});

/// Factoring reliability for every answer node, each computed on its own
/// query-relevant subgraph. Returns scores indexed like
/// `query_graph.answers`.
Result<std::vector<double>> ExactReliabilityAllAnswers(
    const QueryGraph& query_graph, const FactoringOptions& options = {});

}  // namespace biorank

#endif  // BIORANK_CORE_RELIABILITY_EXACT_H_
