#include "core/explanation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "util/strings.h"

namespace biorank {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// -log of a probability, with 0 mapped to +infinity (unusable element).
double Weight(double p) {
  if (p <= 0.0) return kInfinity;
  return -std::log(p);
}

/// Dijkstra over -log weights from `source` to `target`, avoiding the
/// node set `banned_nodes` and the edge set `banned_edges`, and forcing
/// the path to start with `prefix` (already-fixed nodes/edges whose cost
/// is `prefix_cost` and whose last node is `spur`). Returns the full path
/// or an empty one when unreachable.
struct DijkstraResult {
  EvidencePath path;
  bool found = false;
};

DijkstraResult ShortestFrom(const ProbabilisticEntityGraph& graph,
                            NodeId spur, NodeId target,
                            const std::vector<bool>& banned_nodes,
                            const std::set<EdgeId>& banned_edges) {
  int capacity = graph.node_capacity();
  std::vector<double> dist(capacity, kInfinity);
  std::vector<EdgeId> via_edge(capacity, -1);
  std::vector<NodeId> via_node(capacity, kInvalidNode);

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  dist[spur] = 0.0;
  queue.push({0.0, spur});
  while (!queue.empty()) {
    auto [d, x] = queue.top();
    queue.pop();
    if (d > dist[x]) continue;
    if (x == target) break;
    graph.ForEachOutEdge(x, [&](EdgeId e) {
      if (banned_edges.count(e) > 0) return;
      const GraphEdge& edge = graph.edge(e);
      NodeId y = edge.to;
      if (banned_nodes[y]) return;
      double step = Weight(edge.q) + Weight(graph.node(y).p);
      if (step == kInfinity) return;
      double candidate = d + step;
      if (candidate < dist[y]) {
        dist[y] = candidate;
        via_edge[y] = e;
        via_node[y] = x;
        queue.push({candidate, y});
      }
    });
  }

  DijkstraResult result;
  if (dist[target] == kInfinity) return result;
  // Reconstruct spur -> target.
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  NodeId cursor = target;
  while (cursor != spur) {
    nodes.push_back(cursor);
    edges.push_back(via_edge[cursor]);
    cursor = via_node[cursor];
  }
  nodes.push_back(spur);
  std::reverse(nodes.begin(), nodes.end());
  std::reverse(edges.begin(), edges.end());
  result.path.nodes = std::move(nodes);
  result.path.edges = std::move(edges);
  result.found = true;
  return result;
}

/// Existence probability of a path: product of all node and edge
/// probabilities (source node included).
double PathProbability(const ProbabilisticEntityGraph& graph,
                       const EvidencePath& path) {
  double p = 1.0;
  for (NodeId n : path.nodes) p *= graph.node(n).p;
  for (EdgeId e : path.edges) p *= graph.edge(e).q;
  return p;
}

}  // namespace

Result<std::vector<EvidencePath>> ExplainAnswer(
    const QueryGraph& query_graph, NodeId target,
    const ExplanationOptions& options) {
  BIORANK_RETURN_IF_ERROR(query_graph.Validate());
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  if (!graph.IsValidNode(target)) {
    return Status::InvalidArgument("explanation: invalid target");
  }
  if (options.max_paths < 1) {
    return Status::InvalidArgument("explanation: max_paths must be >= 1");
  }

  std::vector<EvidencePath> accepted;
  std::vector<bool> no_banned_nodes(graph.node_capacity(), false);

  // Yen's algorithm: best path by Dijkstra, then spur deviations.
  DijkstraResult first = ShortestFrom(graph, query_graph.source, target,
                                      no_banned_nodes, {});
  if (!first.found) return accepted;  // Unreachable: no explanation.
  first.path.probability = PathProbability(graph, first.path);
  accepted.push_back(first.path);

  // Candidate pool, strongest (lowest -log cost == highest prob) first.
  auto by_probability = [](const EvidencePath& a, const EvidencePath& b) {
    return a.probability < b.probability;
  };
  std::vector<EvidencePath> candidates;
  std::set<std::vector<EdgeId>> seen;
  seen.insert(accepted[0].edges);

  while (static_cast<int>(accepted.size()) < options.max_paths) {
    const EvidencePath& previous = accepted.back();
    for (size_t spur_index = 0; spur_index + 1 < previous.nodes.size();
         ++spur_index) {
      NodeId spur = previous.nodes[spur_index];
      // Ban edges that would recreate an already-accepted path sharing
      // this root prefix.
      std::set<EdgeId> banned_edges;
      for (const EvidencePath& path : accepted) {
        if (path.nodes.size() > spur_index &&
            std::equal(path.nodes.begin(),
                       path.nodes.begin() + spur_index + 1,
                       previous.nodes.begin())) {
          if (spur_index < path.edges.size()) {
            banned_edges.insert(path.edges[spur_index]);
          }
        }
      }
      // Ban the root-path nodes (looplessness).
      std::vector<bool> banned_nodes(graph.node_capacity(), false);
      for (size_t i = 0; i < spur_index; ++i) {
        banned_nodes[previous.nodes[i]] = true;
      }

      DijkstraResult spur_result =
          ShortestFrom(graph, spur, target, banned_nodes, banned_edges);
      if (!spur_result.found) continue;

      EvidencePath candidate;
      candidate.nodes.assign(previous.nodes.begin(),
                             previous.nodes.begin() + spur_index);
      candidate.edges.assign(previous.edges.begin(),
                             previous.edges.begin() + spur_index);
      candidate.nodes.insert(candidate.nodes.end(),
                             spur_result.path.nodes.begin(),
                             spur_result.path.nodes.end());
      candidate.edges.insert(candidate.edges.end(),
                             spur_result.path.edges.begin(),
                             spur_result.path.edges.end());
      candidate.probability = PathProbability(graph, candidate);
      if (seen.insert(candidate.edges).second) {
        candidates.push_back(std::move(candidate));
        std::push_heap(candidates.begin(), candidates.end(),
                       by_probability);
      }
    }
    if (candidates.empty()) break;
    std::pop_heap(candidates.begin(), candidates.end(), by_probability);
    EvidencePath best = std::move(candidates.back());
    candidates.pop_back();
    if (best.probability < options.min_probability) break;
    accepted.push_back(std::move(best));
  }

  // Filter by the probability floor (the first path may also be weak).
  std::vector<EvidencePath> result;
  for (EvidencePath& path : accepted) {
    if (path.probability >= options.min_probability) {
      result.push_back(std::move(path));
    }
  }
  return result;
}

std::string FormatEvidencePath(const QueryGraph& query_graph,
                               const EvidencePath& path) {
  const ProbabilisticEntityGraph& graph = query_graph.graph;
  std::string out;
  for (size_t i = 0; i < path.nodes.size(); ++i) {
    const GraphNode& node = graph.node(path.nodes[i]);
    out += node.label.empty() ? std::to_string(path.nodes[i]) : node.label;
    if (i < path.edges.size()) {
      out += " -[q=" + FormatCompact(graph.edge(path.edges[i]).q, 3) + "]-> ";
    }
  }
  out += "  (p=" + FormatCompact(path.probability, 4) + ")";
  return out;
}

}  // namespace biorank
